//! Saving and re-loading solved designs as JSON.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use dsd_core::{Candidate, ConfigurationSolver, Environment, Thoroughness};
use dsd_protection::TechniqueConfig;
use dsd_recovery::Placement;
use dsd_workload::AppId;

/// Errors raised while loading a saved design.
#[derive(Debug)]
pub enum SavedError {
    /// The JSON failed to parse.
    Parse(serde_json::Error),
    /// The design does not fit the environment it was loaded against.
    Mismatch(String),
}

impl fmt::Display for SavedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SavedError::Parse(e) => write!(f, "design parse error: {e}"),
            SavedError::Mismatch(msg) => write!(f, "design does not fit environment: {msg}"),
        }
    }
}

impl Error for SavedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SavedError::Parse(e) => Some(e),
            SavedError::Mismatch(_) => None,
        }
    }
}

/// One application's saved protection decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedAssignment {
    /// Application index within the environment's workload set.
    pub app: usize,
    /// Application instance name (informational).
    pub app_name: String,
    /// Technique name (resolved against the environment's catalog on
    /// load, so designs survive catalog reordering).
    pub technique: String,
    /// Chosen configuration parameters.
    pub config: TechniqueConfig,
    /// Chosen placement.
    pub placement: Placement,
}

/// A solved design in a portable form.
///
/// Deliberately stores only the *decisions* (technique, config,
/// placement); on load the provisioning is rebuilt from the environment
/// and the configuration solver re-applies the resource-addition loop, so
/// a saved design can be re-evaluated under different failure rates or
/// policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedDesign {
    /// Per-application decisions in application order.
    pub assignments: Vec<SavedAssignment>,
    /// Total annual cost at save time (informational).
    pub annual_cost_dollars: f64,
}

impl SavedDesign {
    /// Captures a solved candidate.
    ///
    /// # Panics
    ///
    /// Panics if the candidate has not been evaluated.
    #[must_use]
    pub fn from_candidate(env: &Environment, candidate: &Candidate) -> Self {
        let assignments = candidate
            .assignments()
            .iter()
            .map(|(app, a)| SavedAssignment {
                app: app.0,
                app_name: env.workloads[*app].name.clone(),
                technique: env.catalog[a.technique].name.clone(),
                config: a.config,
                placement: a.placement,
            })
            .collect();
        SavedDesign { assignments, annual_cost_dollars: candidate.cost().total().as_f64() }
    }

    /// Serializes to pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot for this type).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("design serializes")
    }

    /// Parses a design from JSON.
    ///
    /// # Errors
    ///
    /// [`SavedError::Parse`] on malformed JSON.
    pub fn from_json(text: &str) -> Result<Self, SavedError> {
        serde_json::from_str(text).map_err(SavedError::Parse)
    }

    /// Rebuilds an evaluated candidate against `env`, re-running the
    /// quick configuration solve to restore resource additions.
    ///
    /// # Errors
    ///
    /// [`SavedError::Mismatch`] when an application or technique is
    /// unknown, or an allocation no longer fits the environment.
    pub fn to_candidate(&self, env: &Environment) -> Result<Candidate, SavedError> {
        let mut candidate = Candidate::empty(env);
        for saved in &self.assignments {
            if saved.app >= env.workloads.len() {
                return Err(SavedError::Mismatch(format!(
                    "application index {} out of range",
                    saved.app
                )));
            }
            let technique = env.catalog.find(&saved.technique).ok_or_else(|| {
                SavedError::Mismatch(format!("unknown technique: {}", saved.technique))
            })?;
            // Validate the placement's coordinates before touching the
            // provision: out-of-range sites/slots would otherwise panic
            // deep inside allocation.
            let site_count = env.topology.site_count();
            let mut arrays = vec![saved.placement.primary];
            arrays.extend(saved.placement.mirror);
            for r in arrays {
                if r.site.0 >= site_count || r.slot >= env.topology.site(r.site).array_slots.len() {
                    return Err(SavedError::Mismatch(format!(
                        "{}: array slot {r} does not exist in this environment",
                        saved.app_name
                    )));
                }
            }
            if let Some(t) = saved.placement.tape {
                if t.site.0 >= site_count || t.slot >= env.topology.site(t.site).tape_slots.len() {
                    return Err(SavedError::Mismatch(format!(
                        "{}: tape slot {t} does not exist in this environment",
                        saved.app_name
                    )));
                }
            }
            if let Some(s) = saved.placement.failover_site {
                if s.0 >= site_count {
                    return Err(SavedError::Mismatch(format!(
                        "{}: failover site {s} does not exist in this environment",
                        saved.app_name
                    )));
                }
            }
            // The placement's route is re-resolved during assignment; the
            // shape (mirror slot, tape slot) must still exist.
            candidate
                .try_assign(env, AppId(saved.app), technique, saved.config, saved.placement)
                .map_err(|e| SavedError::Mismatch(format!("{}: {e}", saved.app_name)))?;
        }
        ConfigurationSolver::new(env).complete(&mut candidate, Thoroughness::Quick);
        Ok(candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_core::{Budget, DesignSolver};
    use dsd_scenarios::environments::peer_sites;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn solved() -> (Environment, Candidate) {
        let env = peer_sites();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let best =
            DesignSolver::new(&env).solve(Budget::iterations(20), &mut rng).best.expect("feasible");
        (env, best)
    }

    #[test]
    fn save_load_roundtrip_preserves_decisions_and_cost_scale() {
        let (env, best) = solved();
        let saved = SavedDesign::from_candidate(&env, &best);
        let json = saved.to_json();
        let reloaded = SavedDesign::from_json(&json).expect("parses");
        assert_eq!(reloaded, saved);

        let rebuilt = reloaded.to_candidate(&env).expect("fits");
        assert!(rebuilt.is_complete(&env));
        for (app, original) in best.assignments() {
            let loaded = rebuilt.assignment(*app).expect("present");
            assert_eq!(loaded.technique, original.technique);
            assert_eq!(loaded.config, original.config);
            assert_eq!(loaded.placement.primary, original.placement.primary);
            assert_eq!(loaded.placement.mirror, original.placement.mirror);
        }
        // Quick config re-solve may differ slightly in extras; costs must
        // be close (and never wildly off).
        let a = best.cost().total().as_f64();
        let b = rebuilt.cost().total().as_f64();
        assert!((a - b).abs() / a < 0.05, "{a} vs {b}");
    }

    #[test]
    fn loading_against_wrong_environment_fails_cleanly() {
        let (env, best) = solved();
        let saved = SavedDesign::from_candidate(&env, &best);
        let tiny = crate::spec::EnvironmentSpec::example();
        let mut tiny = tiny;
        tiny.sites.truncate(1); // mirror placements can no longer fit
        let wrong_env = tiny.to_environment().expect("valid spec");
        let err = saved.to_candidate(&wrong_env).unwrap_err();
        assert!(matches!(err, SavedError::Mismatch(_)));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(SavedDesign::from_json("{nope"), Err(SavedError::Parse(_))));
    }
}
