//! Subcommand implementations. Each returns the text to print so the
//! binary stays a thin dispatcher and integration tests can assert on
//! output.

use std::error::Error;
use std::fmt::Write as _;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use serde::Serialize;

use dsd_core::{
    lower_bound, run_tournament, technique_marginals, Budget, Certificate, CostAttribution,
    DesignSolver, Environment, EvalCache, Portfolio, ScenarioOutcomeCache, TechniqueMarginal,
    TournamentConfig, DEFAULT_CACHE_CAPACITY,
};
use dsd_recovery::Evaluator;
use dsd_scenarios::experiments::{ablation, figure2, figure3, figure4, sensitivity, table4};

use crate::saved::SavedDesign;
use crate::spec::EnvironmentSpec;

/// Options shared by solver-running commands.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Solver iteration budget.
    pub budget: u64,
    /// RNG seed.
    pub seed: u64,
    /// Run `dsd design` through the work-stealing portfolio solver
    /// instead of the single-seeded sequential solver.
    pub portfolio: bool,
    /// Portfolio worker threads; `None` sizes to the machine.
    pub threads: Option<usize>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { budget: 300, seed: 2006, portfolio: false, threads: None }
    }
}

/// `dsd init` — emit a ready-to-edit example spec.
#[must_use]
pub fn cmd_init() -> String {
    EnvironmentSpec::example().to_toml()
}

/// `dsd tables` — print the paper's input catalogs (Tables 1–3).
#[must_use]
pub fn cmd_tables() -> String {
    let env = dsd_scenarios::environments::peer_sites();
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: application classes");
    for p in dsd_workload::WorkloadProfile::paper_mix() {
        let _ = writeln!(out, "  {p}");
    }
    let _ = writeln!(out, "\nTable 2: data protection techniques");
    for t in env.catalog.iter() {
        let _ = writeln!(out, "  {t} — recovery: {}", t.recovery);
    }
    let _ = writeln!(out, "\nTable 3: device types");
    for spec in [
        dsd_resources::DeviceSpec::xp1200(),
        dsd_resources::DeviceSpec::eva800(),
        dsd_resources::DeviceSpec::msa1500(),
        dsd_resources::DeviceSpec::tape_library_high(),
        dsd_resources::DeviceSpec::tape_library_med(),
    ] {
        let _ = writeln!(
            out,
            "  {spec}: fixed {}, {} max, {} units of {} / {}",
            spec.fixed_cost,
            spec.enclosure_bandwidth,
            spec.max_capacity_units,
            spec.capacity_per_unit,
            spec.bandwidth_per_unit
        );
    }
    out
}

/// `dsd design <spec.toml>` — solve and render the design (plus optional
/// JSON for `--save`).
///
/// # Errors
///
/// Spec errors, or a message when no feasible design exists.
pub fn cmd_design(
    spec_text: &str,
    options: RunOptions,
) -> Result<(String, String, String), Box<dyn Error>> {
    let spec = EnvironmentSpec::from_toml(spec_text)?;
    let env = spec.to_environment()?;
    let cache = EvalCache::new(DEFAULT_CACHE_CAPACITY);
    let budget = Budget::iterations(options.budget);
    // `--portfolio` races greedy/annealing/tabu workers on a shared
    // incumbent; each worker-seed gets the same per-task budget the
    // sequential solver would have received.
    let mut portfolio_info = None;
    let mut outcome = if options.portfolio {
        let portfolio = match options.threads {
            Some(threads) => Portfolio::new(&env).with_workers(threads),
            None => Portfolio::new(&env),
        };
        let seeds: Vec<u64> =
            (0..portfolio.workers() as u64).map(|i| options.seed.wrapping_add(i)).collect();
        let run = portfolio.solve_with_cache(budget, &seeds, &cache);
        portfolio_info = Some((run.workers, run.tasks, run.steals, run.adoptions));
        run.outcome
    } else {
        let mut rng = ChaCha8Rng::seed_from_u64(options.seed);
        DesignSolver::new(&env).with_cache(&cache).solve(budget, &mut rng)
    };
    // Attach the optimality certificate (also publishes the bound.lower /
    // bound.gap_pct gauges into any installed recorder).
    outcome.certify(&env);
    let Some(best) = outcome.best.clone() else {
        return Err("no feasible design found within the budget".into());
    };

    // Thread the cost attribution through the observability exporters:
    // gauges land in the metrics snapshot (diffable via `dsd obs diff`),
    // the instant lands in the JSONL / Chrome trace streams.
    if dsd_obs::enabled() {
        let cost = best.cost();
        dsd_obs::gauge("cost.outlay", cost.outlay.as_f64());
        dsd_obs::gauge("cost.penalty.outage", cost.penalties.outage.as_f64());
        dsd_obs::gauge("cost.penalty.loss", cost.penalties.loss.as_f64());
        dsd_obs::gauge("cost.total", cost.total().as_f64());
        dsd_obs::instant_with(
            "cost.attribution",
            "explain",
            vec![
                ("outlay", cost.outlay.as_f64().into()),
                ("outage", cost.penalties.outage.as_f64().into()),
                ("loss", cost.penalties.loss.as_f64().into()),
                ("total", cost.total().as_f64().into()),
            ],
        );
    }

    let mut text = String::new();
    let _ = writeln!(text, "design ({} nodes evaluated):", outcome.stats.nodes_evaluated);
    for (app, a) in best.assignments() {
        let _ = writeln!(
            text,
            "  {:<28} {:<34} primary @ {}",
            env.workloads[*app].name, env.catalog[a.technique].name, a.placement.primary
        );
    }
    let cost = best.cost();
    let _ = writeln!(text, "annual outlay:   {}", cost.outlay);
    let _ = writeln!(text, "outage penalty:  {}", cost.penalties.outage);
    let _ = writeln!(text, "loss penalty:    {}", cost.penalties.loss);
    let _ = writeln!(text, "total:           {}", cost.total());
    if let Some(cert) = &outcome.bound {
        let _ = writeln!(
            text,
            "certificate:     lower bound {}, gap {:.1}% (dominant term: {})",
            cert.lower_bound, cert.gap_pct, cert.dominant_term
        );
    }
    let stats = outcome.stats;
    let _ = writeln!(text, "search statistics:");
    let _ = writeln!(
        text,
        "  evaluations:   {} ({:.0} evals/s)",
        stats.nodes_evaluated,
        outcome.evals_per_sec()
    );
    let _ = writeln!(
        text,
        "  stage times:   greedy {:.3}s, refit {:.3}s, completion {:.3}s",
        stats.greedy_time.as_secs_f64(),
        stats.refit_time.as_secs_f64(),
        stats.completion_time.as_secs_f64()
    );
    if let Some(cache_stats) = outcome.cache {
        let _ = writeln!(
            text,
            "  eval cache:    {} hits / {} misses ({:.1}% hit rate), {} evictions, {} entries",
            cache_stats.hits,
            cache_stats.misses,
            cache_stats.hit_rate() * 100.0,
            cache_stats.evictions,
            cache_stats.entries
        );
    }
    if let Some((workers, tasks, steals, adoptions)) = portfolio_info {
        let _ = writeln!(
            text,
            "  portfolio:     {workers} workers, {tasks} tasks, {steals} steals, {adoptions} adoptions"
        );
    }

    let json = SavedDesign::from_candidate(&env, &best).to_json();
    let report = crate::report::markdown(&env, &best);
    Ok((text, json, report))
}

/// `dsd evaluate <spec.toml> <design.json>` — re-evaluate a saved design
/// (possibly under edited failure rates) with a per-scenario report.
///
/// # Errors
///
/// Spec/design errors, or a mismatch between the two.
pub fn cmd_evaluate(spec_text: &str, design_text: &str) -> Result<String, Box<dyn Error>> {
    let spec = EnvironmentSpec::from_toml(spec_text)?;
    let env = spec.to_environment()?;
    let design = SavedDesign::from_json(design_text)?;
    let mut candidate = design.to_candidate(&env)?;
    let cost = candidate.evaluate(&env).clone();

    let mut out = String::new();
    let _ = writeln!(out, "cost: {cost}");
    let _ = writeln!(out, "scenarios:");
    let object_rate = env.failures.rates().data_object;
    let protections = candidate.protections(&env);
    let scenarios = env.failures.enumerate(candidate.primaries());
    let evaluator = Evaluator::new(&env.workloads, candidate.provision(), env.recovery);
    for scenario in &scenarios {
        let outcome = evaluator.evaluate_scenario(&protections, &scenario.scope);
        if outcome.outcomes.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  {} ({}):", scenario.scope, scenario.likelihood);
        for o in &outcome.outcomes {
            let _ = writeln!(
                out,
                "    {:<28} {:<22} outage {:<12} loss {}",
                env.workloads[o.app].name,
                o.path.to_string(),
                o.recovery_time.to_string(),
                o.loss_time
            );
        }
    }
    let windows = evaluator.vulnerability_windows(&protections, &scenarios, object_rate);
    if !windows.is_empty() {
        let _ = writeln!(out, "double-failure vulnerability windows:");
        for v in &windows {
            let _ = writeln!(out, "  {v}");
        }
        let total: f64 = windows.iter().map(|v| v.expected_annual.as_f64()).sum();
        let _ =
            writeln!(out, "  total expected annual exposure: {}", dsd_units::Dollars::new(total));
    }
    Ok(out)
}

/// `dsd experiment <name>` — run one of the paper's experiments.
///
/// # Errors
///
/// Unknown experiment names.
pub fn cmd_experiment(name: &str, options: RunOptions) -> Result<String, Box<dyn Error>> {
    let budget = Budget::iterations(options.budget);
    let seed = options.seed;
    let out = match name {
        "table4" => table4::run(budget, seed)
            .map(|t| t.to_string())
            .unwrap_or_else(|| "no feasible design found".into()),
        "figure2" => figure2::run(options.budget as usize * 10, 30, seed).to_string(),
        "figure3" => figure3::run(budget, 1000, seed).to_string(),
        "figure4" => figure4::run(&figure4::paper_app_counts(), budget, seed).to_string(),
        "figure5" => {
            let k = sensitivity::SweepKind::DataObject;
            sensitivity::run(k, &k.paper_rates(), budget, seed).to_string()
        }
        "figure6" => {
            let k = sensitivity::SweepKind::DiskArray;
            sensitivity::run(k, &k.paper_rates(), budget, seed).to_string()
        }
        "figure7" => {
            let k = sensitivity::SweepKind::SiteDisaster;
            sensitivity::run(k, &k.paper_rates(), budget, seed).to_string()
        }
        "ablation" => ablation::run(budget, &[seed, seed + 1, seed + 2]).to_string(),
        other => return Err(format!("unknown experiment: {other}").into()),
    };
    Ok(out)
}

/// `dsd analyze-trace <trace.csv>` — measure Table 1 workload
/// characteristics from a block-I/O trace (see `dsd_trace::from_csv` for
/// the format).
///
/// # Errors
///
/// Trace parse errors.
pub fn cmd_analyze_trace(trace_text: &str) -> Result<String, Box<dyn Error>> {
    let trace = dsd_trace::from_csv(trace_text)?;
    let stats = dsd_trace::TraceStats::analyze(&trace);
    let mut out = String::new();
    let _ = writeln!(out, "events:        {}", trace.len());
    let _ = writeln!(out, "duration:      {}", trace.duration);
    let _ = writeln!(out, "capacity:      {}", stats.capacity);
    let _ = writeln!(out, "avg update:    {}", stats.avg_update);
    let _ = writeln!(out, "peak update:   {}", stats.peak_update);
    let _ = writeln!(out, "avg access:    {}", stats.avg_access);
    let _ = writeln!(out, "unique update: {}", stats.unique_update);
    let _ = writeln!(out, "unique frac:   {:.3}", stats.unique_fraction());
    let _ = writeln!(
        out,
        "spec snippet:\n  capacity_gb = {}\n  avg_update_mbps = {:.3}\n  \
         peak_update_mbps = {:.3}\n  avg_access_mbps = {:.3}\n  unique_fraction = {:.3}",
        stats.capacity.as_f64(),
        stats.avg_update.as_f64(),
        stats.peak_update.as_f64(),
        stats.avg_access.as_f64(),
        stats.unique_fraction()
    );
    Ok(out)
}

/// `dsd obs summary <trace.jsonl> [<metrics.json>] [--top N]` — digest a
/// recorded solver trace: top-`top` events by cumulative time, the
/// objective-vs-evaluations curve from `solver.improved` points, and
/// (when a metrics snapshot is given) the headline counters, gauges,
/// latency percentiles, per-move-type acceptance rates, and delta-cache
/// effectiveness.
///
/// # Errors
///
/// Trace or metrics parse errors.
pub fn cmd_obs_summary(
    trace_text: &str,
    metrics_text: Option<&str>,
    top: usize,
) -> Result<String, Box<dyn Error>> {
    let parsed = dsd_obs::export::parse_jsonl(trace_text);
    if parsed.records.is_empty() && !trace_text.trim().is_empty() {
        let detail = parsed.first_error.unwrap_or_else(|| "no parseable lines".to_string());
        return Err(format!("not a JSONL trace ({detail})").into());
    }
    let records = parsed.records;
    let mut out = String::new();
    let _ = writeln!(out, "trace: {} events", records.len());
    if parsed.skipped > 0 {
        // Truncated/corrupt lines (a torn tail from a killed run) are
        // skipped, not fatal — but always surfaced.
        let _ = writeln!(out, "parse.skipped: {} malformed lines ignored", parsed.skipped);
    }

    let _ = writeln!(out, "top events by cumulative time:");
    for t in dsd_obs::export::totals_by_name(&records).into_iter().take(top) {
        let _ = writeln!(
            out,
            "  {:<28} {:<10} x{:<7} {:>12.3} ms",
            t.name,
            t.cat,
            t.count,
            t.total_us / 1000.0
        );
    }

    let curve = dsd_obs::export::objective_curve(&records);
    if curve.is_empty() {
        let _ = writeln!(out, "objective curve: no solver.improved events in trace");
    } else {
        let _ = writeln!(out, "objective vs evaluations ({} improvements):", curve.len());
        for point in &curve {
            let _ = writeln!(out, "  {:>8.0} evals  ->  ${:.0}", point.evals, point.cost);
        }
    }

    if let Some(metrics_text) = metrics_text {
        let snapshot: dsd_obs::MetricsSnapshot = serde_json::from_str(metrics_text)?;
        let _ = writeln!(out, "metrics: {} series", snapshot.series_count());
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "  counter {name:<28} {value}");
        }
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "  gauge   {name:<28} {value:.4}");
        }
        for (name, h) in &snapshot.histograms {
            let _ = writeln!(
                out,
                "  hist    {name:<28} n={} mean={:.6} p50={:.6} p90={:.6} p95={:.6} p99={:.6} \
                 max={:.6}",
                h.count, h.mean, h.p50, h.p90, h.p95, h.p99, h.max
            );
        }
        if let Some(line) = shard_occupancy_line(&snapshot) {
            let _ = writeln!(out, "{line}");
        }
        let rates = snapshot.move_rates();
        if !rates.is_empty() {
            let _ = writeln!(out, "move acceptance rates:");
            for r in &rates {
                let _ = writeln!(
                    out,
                    "  {:<18} {:>7} trials  {:>7} accepted  ({:.1}%)",
                    r.kind,
                    r.trials,
                    r.accepted,
                    r.acceptance_rate().unwrap_or(0.0) * 100.0
                );
            }
        }
        if let (Some(hits), Some(recomputed)) =
            (snapshot.counter("eval.delta_hits"), snapshot.counter("eval.scenarios_recomputed"))
        {
            let total = hits + recomputed;
            if total > 0 {
                #[allow(clippy::cast_precision_loss)]
                let reuse = hits as f64 / total as f64 * 100.0;
                let _ = writeln!(
                    out,
                    "delta cache: {hits} scenarios replayed / {recomputed} recomputed \
                     ({reuse:.1}% reuse)"
                );
            }
        }
    }
    Ok(out)
}

/// Machine-readable `dsd explain` export: the full attribution plus the
/// marginal-technique analysis, serialized as one JSON document.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExplainReport {
    /// Line-item cost attribution (bit-exact against the evaluation).
    pub attribution: CostAttribution,
    /// Per-application marginal cost of the chosen technique.
    pub marginals: Vec<TechniqueMarginal>,
    /// Optimality certificate: relaxation lower bound vs. achieved cost.
    pub certificate: Certificate,
}

/// `dsd explain <spec.toml> <design.json> [--top N]` — render the
/// paper-style cost-attribution tables for a saved design and verify
/// that the line items reproduce the evaluated objective bit-for-bit.
/// Returns `(text, json)`; the JSON is the [`ExplainReport`].
///
/// # Errors
///
/// Spec/design errors, or an attribution that fails bit-exact
/// verification (which would be a solver bug, not a user error).
pub fn cmd_explain(
    spec_text: &str,
    design_text: &str,
    top: usize,
) -> Result<(String, String), Box<dyn Error>> {
    let spec = EnvironmentSpec::from_toml(spec_text)?;
    let env = spec.to_environment()?;
    let design = SavedDesign::from_json(design_text)?;
    let mut candidate = design.to_candidate(&env)?;
    candidate.evaluate(&env);
    let attribution = candidate.attribution(&env);
    attribution.verify().map_err(|e| format!("attribution failed bit-exact verification: {e}"))?;
    let bound = lower_bound(&env);
    let certificate = Certificate::new(&bound, candidate.cost().total());
    certificate.verify().map_err(|e| format!("optimality certificate violated: {e}"))?;
    let mut scache = ScenarioOutcomeCache::new();
    let marginals = technique_marginals(&env, &mut candidate, &mut scache);
    let text = crate::report::explain_text(&env, &attribution, &marginals, &certificate, top);
    let report = ExplainReport { attribution, marginals, certificate };
    let json = serde_json::to_string_pretty(&report)?;
    Ok((text, json))
}

/// `dsd tournament [--budget N] [--seed N] [--apps N]` — race the
/// heuristics against the config-grid exhaustive optimum and the
/// relaxation lower bound across a seeded grid of small environments.
/// Returns `(text, json, violations)` where `violations` counts
/// instances breaking the certified `bound <= exhaustive <= heuristic`
/// ordering (the caller turns a nonzero count into a nonzero exit).
///
/// # Errors
///
/// Serialization failures only; an infeasible instance simply records
/// no cost for the affected heuristic.
pub fn cmd_tournament(
    options: RunOptions,
    max_apps: usize,
) -> Result<(String, String, u64), Box<dyn Error>> {
    let config = TournamentConfig {
        seed: options.seed,
        budget: options.budget,
        app_counts: (2..=max_apps.max(2)).collect(),
        ..TournamentConfig::default()
    };
    let report = run_tournament(&config);
    let json = serde_json::to_string_pretty(&report)?;
    Ok((format!("{report}\n"), json, report.violations()))
}

/// `dsd obs diff <run-a> <run-b>` — compare two exported runs (metrics
/// snapshots or explain JSON) leaf-by-leaf and flag regressions with
/// percentage deltas. Returns the rendered diff and the regression
/// count (zero when a run is diffed against itself).
///
/// # Errors
///
/// JSON parse errors in either input.
pub fn cmd_obs_diff(a_text: &str, b_text: &str) -> Result<(String, usize), Box<dyn Error>> {
    use dsd_obs::export::{diff_numeric, DiffClass};
    let a = serde_json::parse(a_text).map_err(|e| format!("run A: {e}"))?;
    let b = serde_json::parse(b_text).map_err(|e| format!("run B: {e}"))?;
    let entries = diff_numeric(&a, &b);

    let mut out = String::new();
    let _ = writeln!(out, "compared {} numeric series", entries.len());
    let mut counts = [0usize; 5]; // regressed, improved, changed, added, removed
    for e in &entries {
        let class = e.classify();
        let (label, idx) = match class {
            DiffClass::Unchanged => continue,
            DiffClass::Regressed => ("REGRESSED", 0),
            DiffClass::Improved => ("improved ", 1),
            DiffClass::Changed => ("changed  ", 2),
            DiffClass::Added => ("added    ", 3),
            DiffClass::Removed => ("removed  ", 4),
        };
        counts[idx] += 1;
        let delta = match e.pct_delta() {
            Some(pct) => format!("{pct:+.2}%"),
            None => "n/a".to_string(),
        };
        let show = |v: Option<f64>| v.map_or("—".to_string(), |v| format!("{v}"));
        let _ = writeln!(
            out,
            "  {label} {:<40} {:>16} -> {:<16} ({delta})",
            e.name,
            show(e.a),
            show(e.b)
        );
    }
    let changed: usize = counts.iter().sum();
    if changed == 0 {
        let _ = writeln!(out, "runs are numerically identical: zero deltas");
    }
    let _ = writeln!(
        out,
        "summary: {} regressions, {} improvements, {} neutral changes, {} added, {} removed",
        counts[0], counts[1], counts[2], counts[3], counts[4]
    );
    Ok((out, counts[0]))
}

/// Renders the eval-cache shard occupancy gauges
/// (`eval_cache.shard_occupancy.<i>`, published at the end of a cached
/// solve) as one imbalance line; `None` when the run published none.
fn shard_occupancy_line(snapshot: &dsd_obs::MetricsSnapshot) -> Option<String> {
    let occupancy: Vec<f64> = snapshot
        .gauges
        .iter()
        .filter(|(name, _)| name.starts_with("eval_cache.shard_occupancy."))
        .map(|(_, v)| *v)
        .collect();
    if occupancy.is_empty() {
        return None;
    }
    let min = occupancy.iter().copied().fold(f64::INFINITY, f64::min);
    let max = occupancy.iter().copied().fold(0.0f64, f64::max);
    #[allow(clippy::cast_precision_loss)]
    let mean = occupancy.iter().sum::<f64>() / occupancy.len() as f64;
    let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
    Some(format!(
        "eval cache shards: {} occupancy min={min:.0} mean={mean:.1} max={max:.0} \
         imbalance={imbalance:.2}x",
        occupancy.len()
    ))
}

/// Histograms surfaced in the profile report's contention section, in
/// display order: solver hot-path latencies plus the portfolio's
/// contention telemetry.
const CONTENTION_HISTOGRAMS: &[&str] = &[
    "solver.eval_latency",
    "eval_cache.probe_latency",
    "portfolio.steal_latency",
    "portfolio.worker_eval_secs",
    "portfolio.worker_idle_secs",
];

/// Seqlock adopt/publish counters shown alongside them.
const CONTENTION_COUNTERS: &[&str] = &[
    "portfolio.adopts",
    "portfolio.adopt_rejects",
    "portfolio.publish_accepts",
    "portfolio.publish_rejects",
];

/// `dsd obs profile <trace.jsonl> [<metrics.json>] [--top N]` — fold the
/// span stream into the deterministic profile tree and render the top-N
/// self-time table (plus the contention section when a metrics snapshot
/// is supplied). Returns `(text, json)`; the JSON is the
/// schema-versioned profile export.
///
/// # Errors
///
/// An unparseable trace, an unparseable metrics snapshot, or a tree
/// that fails its containment invariant (which would be a recorder bug,
/// not a user error — surfaced as a nonzero exit so CI catches it).
pub fn cmd_obs_profile(
    trace_text: &str,
    metrics_text: Option<&str>,
    top: usize,
) -> Result<(String, String), Box<dyn Error>> {
    let parsed = dsd_obs::export::parse_jsonl(trace_text);
    if parsed.records.is_empty() && !trace_text.trim().is_empty() {
        let detail = parsed.first_error.unwrap_or_else(|| "no parseable lines".to_string());
        return Err(format!("not a JSONL trace ({detail})").into());
    }
    let mut tree = dsd_obs::ProfileTree::from_records(&parsed.records);
    tree.verify().map_err(|e| format!("profile tree failed its sum invariant: {e}"))?;
    let snapshot: Option<dsd_obs::MetricsSnapshot> =
        metrics_text.map(serde_json::from_str).transpose()?;
    if let Some(snapshot) = &snapshot {
        tree.attach_counters(&snapshot.counters);
    }

    let mut out = String::new();
    let rows = tree.rows();
    let _ = writeln!(
        out,
        "profile: {} nodes over {} threads (quantum {} ns)",
        rows.len(),
        tree.threads,
        tree.quantum_ns
    );
    let total_ms = ns_to_ms(tree.total_ns());
    let _ = writeln!(
        out,
        "attributed: {:.1}% of {total_ms:.3} ms root wall time in non-root nodes",
        tree.attributed_fraction() * 100.0
    );
    if parsed.skipped > 0 {
        let _ = writeln!(out, "parse.skipped: {} malformed lines ignored", parsed.skipped);
    }
    let _ = writeln!(out, "top self-time nodes:");
    let _ = writeln!(
        out,
        "  {:>12} {:>7} {:>12} {:>9}  path",
        "self ms", "self %", "total ms", "count"
    );
    let mut by_self = rows;
    by_self.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.path.cmp(&b.path)));
    for row in by_self.iter().take(top) {
        #[allow(clippy::cast_precision_loss)]
        let pct = if tree.total_ns() == 0 {
            0.0
        } else {
            row.self_ns as f64 / tree.total_ns() as f64 * 100.0
        };
        let _ = writeln!(
            out,
            "  {:>12.3} {:>6.1}% {:>12.3} {:>9}  {}",
            ns_to_ms(row.self_ns),
            pct,
            ns_to_ms(row.total_ns),
            row.count,
            row.path
        );
    }

    if let Some(snapshot) = &snapshot {
        // Contention section: hot-path latency percentiles (reusing the
        // histogram snapshots' quantiles) plus seqlock adopt/publish
        // counts and shard imbalance.
        let mut header_written = false;
        for name in CONTENTION_HISTOGRAMS {
            if let Some(h) = snapshot.histogram(name) {
                if !header_written {
                    let _ = writeln!(out, "contention:");
                    header_written = true;
                }
                let _ = writeln!(
                    out,
                    "  hist    {name:<28} n={} p50={:.6} p95={:.6} p99={:.6} max={:.6}",
                    h.count, h.p50, h.p95, h.p99, h.max
                );
            }
        }
        for name in CONTENTION_COUNTERS {
            if let Some(v) = snapshot.counter(name) {
                if !header_written {
                    let _ = writeln!(out, "contention:");
                    header_written = true;
                }
                let _ = writeln!(out, "  counter {name:<28} {v}");
            }
        }
        if let Some(line) = shard_occupancy_line(snapshot) {
            let _ = writeln!(out, "{line}");
        }
    }

    let json = serde_json::to_string_pretty(&tree.to_value())?;
    Ok((out, json))
}

/// `dsd obs flame <trace.jsonl>` — render the profile tree in the
/// collapsed-stack format standard flamegraph tooling consumes
/// (`flamegraph.pl`, speedscope, inferno). Returns
/// `(collapsed, enriched_chrome_trace)`; the Chrome trace carries each
/// span's reconstructed call path and self time as arguments.
///
/// # Errors
///
/// An unparseable trace, or a tree failing its containment invariant.
pub fn cmd_obs_flame(trace_text: &str) -> Result<(String, String), Box<dyn Error>> {
    let parsed = dsd_obs::export::parse_jsonl(trace_text);
    if parsed.records.is_empty() && !trace_text.trim().is_empty() {
        let detail = parsed.first_error.unwrap_or_else(|| "no parseable lines".to_string());
        return Err(format!("not a JSONL trace ({detail})").into());
    }
    let tree = dsd_obs::ProfileTree::from_records(&parsed.records);
    tree.verify().map_err(|e| format!("profile tree failed its sum invariant: {e}"))?;
    Ok((tree.collapsed(), dsd_obs::profile::chrome_trace_enriched(&parsed.records)))
}

fn ns_to_ms(ns: u64) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    {
        ns as f64 / 1_000_000.0
    }
}

/// `dsd obs curve <progress.jsonl>...` — turn one or more flight-recorder
/// logs (`dsd design --progress-log`) into a convergence-curve report:
/// cost and certificate gap vs time, time-to-X%-gap milestones,
/// per-worker lanes (including steal/adoption cooperation counts), and
/// an A/B table when several runs are given. `lane` narrows every run to
/// one worker lane's events — runs without that lane are dropped.
/// Returns `(text, json, csv)`; the caller writes the exports on
/// `--json` / `--csv`.
///
/// # Errors
///
/// An input that yields no progress events (and is not blank), or a
/// `lane` present in none of the runs.
pub fn cmd_obs_curve(
    runs: &[(String, String)],
    lane: Option<u64>,
) -> Result<(String, String, String), Box<dyn Error>> {
    let mut curves: Vec<crate::convergence::RunCurve> = runs
        .iter()
        .map(|(name, text)| crate::convergence::RunCurve::parse(name, text))
        .collect::<Result<_, _>>()?;
    if let Some(worker) = lane {
        curves.retain_mut(|c| c.filter_lane(worker));
        if curves.is_empty() {
            return Err(format!("lane {worker} not present in any run").into());
        }
    }
    let text = crate::convergence::render(&curves);
    let json = serde_json::to_string_pretty(&crate::convergence::json_report(&curves))?;
    let csv = crate::convergence::csv(&curves);
    Ok((text, json, csv))
}

/// `dsd bench history [--quick]` — run the perf-history pass (the bench
/// binaries plus an in-process instrumented solve) and append one
/// schema-versioned record to `BENCH_history.jsonl` in `DSD_BENCH_DIR`.
///
/// # Errors
///
/// Filesystem errors from the append.
pub fn cmd_bench_history(quick: bool, skip_bins: bool) -> Result<String, Box<dyn Error>> {
    let cfg = dsd_bench::history::HistoryConfig::from_env(quick, skip_bins);
    let (record, path) = dsd_bench::history::run_history(&cfg)?;
    let mut out = String::new();
    if let Some(solver) = record.get("solver") {
        let _ = writeln!(out, "solver: {}", dsd_obs::export::to_compact_json(solver));
    }
    if let Some(serde::Value::Map(benches)) = record.get("benches") {
        for (name, section) in benches {
            let ok = matches!(section.get("ok"), Some(serde::Value::Bool(true)));
            let _ = writeln!(out, "bench {name}: {}", if ok { "ok" } else { "SKIPPED/FAILED" });
        }
    }
    let _ = writeln!(out, "history record appended to {}", path.display());
    Ok(out)
}

/// `dsd bench compare [--tolerance PCT] [--fail-on-regression]` — diff
/// the latest `BENCH_history.jsonl` record against the previous one
/// (or itself when the log holds a single record). Returns the rendered
/// report and the count of regressions beyond the tolerance; the caller
/// turns a nonzero count into a nonzero exit under
/// `--fail-on-regression`.
///
/// # Errors
///
/// A missing or empty history log.
pub fn cmd_bench_compare(tolerance_pct: f64) -> Result<(String, usize), Box<dyn Error>> {
    let cfg = dsd_bench::history::HistoryConfig::from_env(false, false);
    let path = cfg.history_path();
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let (records, skipped) = dsd_bench::history::load_history(&text);
    let (mut out, regressions) = dsd_bench::history::compare_latest(&records, tolerance_pct)?;
    if skipped > 0 {
        let _ = writeln!(out, "parse.skipped: {skipped} malformed history lines ignored");
    }
    Ok((out, regressions))
}

/// Builds an environment directly from spec text (helper for tests and
/// the binary's validation path).
///
/// # Errors
///
/// Spec parse/validation errors.
pub fn parse_environment(spec_text: &str) -> Result<Environment, Box<dyn Error>> {
    Ok(EnvironmentSpec::from_toml(spec_text)?.to_environment()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_emits_parseable_spec() {
        let toml_text = cmd_init();
        let env = parse_environment(&toml_text).expect("example is valid");
        assert_eq!(env.workloads.len(), 8);
    }

    #[test]
    fn tables_render_all_catalogs() {
        let text = cmd_tables();
        assert!(text.contains("central banking"));
        assert!(text.contains("async mirror"));
        assert!(text.contains("XP1200"));
        assert!(text.contains("tape library"));
    }

    #[test]
    fn design_and_evaluate_roundtrip() {
        let spec = cmd_init();
        let (text, json, report) =
            cmd_design(&spec, RunOptions { budget: 15, seed: 3, ..RunOptions::default() })
                .expect("solvable");
        assert!(text.contains("total:"));
        assert!(text.contains("search statistics:"));
        assert!(text.contains("eval cache:"));
        assert!(report.contains("# Dependable storage design report"));
        let eval = cmd_evaluate(&spec, &json).expect("evaluates");
        assert!(eval.contains("cost:"));
        assert!(eval.contains("site disaster"));
    }

    #[test]
    fn analyze_trace_reports_stats() {
        let csv = "secs,block,blocks,kind\n0.0,0,4,W\n60.0,4,4,W\n";
        let out = cmd_analyze_trace(csv).expect("parses");
        assert!(out.contains("avg update"));
        assert!(out.contains("capacity_gb"));
        assert!(cmd_analyze_trace("garbage").is_err());
    }

    #[test]
    fn obs_summary_digests_trace_and_metrics() {
        let recorder = dsd_obs::Recorder::new();
        {
            let _g = recorder.install();
            let mut span = dsd_obs::span("solver.solve", "solver");
            span.arg("budget", 10u64);
            dsd_obs::instant_with(
                "solver.improved",
                "solver",
                vec![("evals", 5u64.into()), ("cost", 1234.5f64.into())],
            );
            dsd_obs::add("solver.nodes_evaluated", 5);
            dsd_obs::add("solver.trials.reassign", 8);
            dsd_obs::add("solver.accepted.reassign", 2);
            dsd_obs::add("eval.delta_hits", 30);
            dsd_obs::add("eval.scenarios_recomputed", 10);
            dsd_obs::observe("solver.eval_latency", 0.002);
            drop(span);
        }
        let trace = dsd_obs::export::trace_jsonl(&recorder.drain_events());
        let metrics = serde_json::to_string(&recorder.metrics_snapshot()).unwrap();

        let out = cmd_obs_summary(&trace, Some(&metrics), 10).expect("summarizes");
        assert!(out.contains("top events by cumulative time"));
        assert!(out.contains("solver.solve"));
        assert!(out.contains("objective vs evaluations"));
        assert!(out.contains("$1234") || out.contains("$1235"));
        assert!(out.contains("counter solver.nodes_evaluated"));
        assert!(out.contains("hist    solver.eval_latency"));
        assert!(out.contains("move acceptance rates:"));
        assert!(out.contains("reassign"));
        assert!(out.contains("(25.0%)"));
        assert!(out.contains("delta cache: 30 scenarios replayed / 10 recomputed (75.0% reuse)"));

        // `--top 0` suppresses the totals table entirely.
        let trimmed = cmd_obs_summary(&trace, None, 0).expect("summarizes");
        assert!(!trimmed.contains("solver.solve  "));

        assert!(cmd_obs_summary("not json", None, 10).is_err());
        assert!(cmd_obs_summary(&trace, Some("not json"), 10).is_err());
    }

    #[test]
    fn obs_summary_tolerates_a_torn_tail() {
        let recorder = dsd_obs::Recorder::new();
        {
            let _g = recorder.install();
            let _span = dsd_obs::span("solver.solve", "solver");
        }
        let mut trace = dsd_obs::export::trace_jsonl(&recorder.drain_events());
        trace.push_str("{\"ts_us\":9.0,\"dur_us\":0.0,\"kind\":\"insta");
        let out = cmd_obs_summary(&trace, None, 10).expect("summarizes despite torn tail");
        assert!(out.contains("trace: 1 events"), "{out}");
        assert!(out.contains("parse.skipped: 1 malformed lines ignored"), "{out}");
    }

    #[test]
    fn obs_curve_digests_a_real_design_progress_log() {
        let spec = cmd_init();
        let channel = dsd_obs::ProgressChannel::new();
        let _ = {
            let _g = channel.install();
            cmd_design(&spec, RunOptions { budget: 15, seed: 3, ..RunOptions::default() })
                .expect("solvable")
        };
        let log = dsd_obs::progress::progress_jsonl(&channel.poll());
        let (text, json, csv) = cmd_obs_curve(&[("run".to_string(), log)], None).expect("curves");
        assert!(text.contains("time to gap:"), "{text}");
        assert!(text.contains("worker lanes:"), "{text}");
        assert!(json.contains("time_to_5pct_gap_secs"), "{json}");
        assert!(csv.starts_with("run,elapsed_secs,cost,gap_pct"), "{csv}");
        assert!(cmd_obs_curve(&[("bad".to_string(), "not a log".to_string())], None).is_err());
    }

    #[test]
    fn bench_history_appends_and_self_compares_clean() {
        let dir = std::env::temp_dir().join(format!("dsd-clihist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("DSD_BENCH_DIR", &dir);
        let out = cmd_bench_history(true, true).expect("history runs");
        assert!(out.contains("history record appended"), "{out}");
        assert!(out.contains("solver:"), "{out}");
        let (report, regressions) = cmd_bench_compare(10.0).expect("compares");
        assert_eq!(regressions, 0, "{report}");
        assert!(report.contains("single record"), "{report}");
        assert!(report.contains("0 regressions"), "{report}");
        std::env::remove_var("DSD_BENCH_DIR");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explain_reproduces_the_design_cost_bit_for_bit() {
        let spec = cmd_init();
        let (_, json, _) =
            cmd_design(&spec, RunOptions { budget: 15, seed: 3, ..RunOptions::default() })
                .expect("solvable");
        let (text, report_json) = cmd_explain(&spec, &json, 3).expect("explains");
        assert!(text.contains("objective:"));
        assert!(text.contains("line items reproduce the evaluated total bit-for-bit"));
        assert!(text.contains("outlay by resource kind:"));
        assert!(text.contains("disk arrays"));
        assert!(text.contains("penalties (likelihood-weighted):"));
        assert!(text.contains("top 3 dominant scenarios overall:"));
        assert!(text.contains("marginal cost of chosen techniques vs runner-up:"));
        assert!(report_json.contains("\"attribution\""));
        assert!(report_json.contains("\"marginals\""));
        assert!(report_json.contains("\"penalty_items\""));
        // Round-trips as JSON our vendored parser can read.
        let value = serde_json::parse(&report_json).expect("valid json");
        assert!(value.get("attribution").is_some());

        assert!(cmd_explain("not toml", &json, 3).is_err());
        assert!(cmd_explain(&spec, "not json", 3).is_err());
    }

    /// Golden snapshot of the explain certificate: the JSON fields
    /// rebuild a bit-identical [`Certificate`] that still verifies, and
    /// a tampered achieved cost (below the bound) is rejected.
    #[test]
    fn explain_certificate_round_trips_json_and_rejects_tampering() {
        use dsd_units::Dollars;

        let spec = cmd_init();
        let (_, json, _) =
            cmd_design(&spec, RunOptions { budget: 15, seed: 3, ..RunOptions::default() })
                .expect("solvable");
        let (text, report_json) = cmd_explain(&spec, &json, 3).expect("explains");
        assert!(text.contains("certificate:"));
        assert!(text.contains("relaxation lower bound:"));
        assert!(text.contains("optimality gap:"));
        assert!(text.contains("dominant relaxation term:"));

        let value = serde_json::parse(&report_json).expect("valid json");
        let cert = value.get("certificate").expect("certificate section present");
        let num = |key: &str| match cert.get(key) {
            Some(serde::Value::Float(f)) => *f,
            Some(serde::Value::Int(i)) => *i as f64,
            other => panic!("field `{key}` missing or not numeric: {other:?}"),
        };
        let term = match cert.get("dominant_term") {
            Some(serde::Value::Str(s)) => s.clone(),
            other => panic!("dominant_term missing: {other:?}"),
        };

        let rebuilt = Certificate {
            lower_bound: Dollars::new(num("lower_bound")),
            achieved: Dollars::new(num("achieved")),
            gap_pct: num("gap_pct"),
            dominant_term: term,
            outlay_floor: Dollars::new(num("outlay_floor")),
            penalty_floor: Dollars::new(num("penalty_floor")),
        };
        // Round-trip is bit-exact: re-serializing the rebuilt certificate
        // reproduces the snapshot, and the certificate still verifies.
        assert_eq!(&rebuilt.serialize(), cert, "certificate does not round-trip JSON");
        rebuilt.verify().expect("round-tripped certificate verifies");
        assert!(rebuilt.gap_pct >= 0.0);
        // The gap is consistent with its own fields.
        let expect_gap = (rebuilt.achieved.as_f64() - rebuilt.lower_bound.as_f64())
            / rebuilt.lower_bound.as_f64()
            * 100.0;
        assert!((rebuilt.gap_pct - expect_gap).abs() < 1e-9);

        // Tampering the achieved cost below the bound must be rejected —
        // this is the condition that makes `dsd explain` exit nonzero.
        let mut tampered = rebuilt;
        tampered.achieved = Dollars::new(tampered.lower_bound.as_f64() * 0.5);
        assert!(tampered.verify().is_err(), "achieved below bound must fail verification");
    }

    #[test]
    fn tournament_races_and_certifies_the_grid() {
        let (text, json, violations) =
            cmd_tournament(RunOptions { budget: 6, seed: 11, ..RunOptions::default() }, 2)
                .expect("runs");
        assert_eq!(violations, 0, "{text}");
        assert!(text.contains("Tournament: 2 instances"));
        assert!(text.contains("violations: bound=0 ordering=0"));
        let value = serde_json::parse(&json).expect("valid json");
        assert!(value.get("instances").is_some());
        assert!(value.get("summary").is_some());
    }

    #[test]
    fn obs_diff_of_a_run_against_itself_reports_zero_deltas() {
        let spec = cmd_init();
        let (_, json, _) =
            cmd_design(&spec, RunOptions { budget: 15, seed: 3, ..RunOptions::default() })
                .expect("solvable");
        let (_, report_json) = cmd_explain(&spec, &json, 3).expect("explains");
        let (out, regressions) = cmd_obs_diff(&report_json, &report_json).expect("diffs");
        assert_eq!(regressions, 0);
        assert!(out.contains("runs are numerically identical: zero deltas"));
        assert!(out.contains("summary: 0 regressions"));
    }

    #[test]
    fn obs_diff_flags_cost_regressions_with_pct_deltas() {
        let a = r#"{"counters": {"cache.hit": 10}, "gauges": {"cost.total": 100.0}}"#;
        let b = r#"{"counters": {"cache.hit": 10}, "gauges": {"cost.total": 125.0}}"#;
        let (out, regressions) = cmd_obs_diff(a, b).expect("diffs");
        assert_eq!(regressions, 1);
        assert!(out.contains("REGRESSED"));
        assert!(out.contains("cost.total"));
        assert!(out.contains("+25.00%"));
        assert!(out.contains("summary: 1 regressions"));

        assert!(cmd_obs_diff("not json", b).is_err());
        assert!(cmd_obs_diff(a, "not json").is_err());
    }

    #[test]
    fn experiments_dispatch() {
        let out =
            cmd_experiment("figure2", RunOptions { budget: 10, seed: 1, ..RunOptions::default() })
                .unwrap();
        assert!(out.contains("Figure 2"));
        assert!(cmd_experiment("figure9", RunOptions::default()).is_err());
    }
}
