#![warn(missing_docs)]

//! Library backing the `dsd` command-line tool.
//!
//! * [`spec`] — the TOML environment specification format and its
//!   conversion to a solver [`dsd_core::Environment`];
//! * [`saved`] — JSON (de)serialization of solved designs, so a design
//!   can be stored, re-loaded and re-evaluated under different failure
//!   assumptions;
//! * [`report`] — markdown design reports (`dsd design --report`);
//! * [`commands`] — the subcommand implementations shared by the binary
//!   and the integration tests;
//! * [`live`] — the `--progress` live status line and the collector
//!   behind `--progress-log`;
//! * [`convergence`] — convergence-curve reports over progress logs
//!   (`dsd obs curve`).
//!
//! # Example spec
//!
//! ```toml
//! [[applications]]
//! profile = "central-banking"
//! count = 2
//!
//! [[applications]]
//! name = "custom oltp"
//! code = "X"
//! outage_per_hour = 1_000_000.0
//! loss_per_hour = 100_000.0
//! capacity_gb = 2000.0
//! avg_update_mbps = 3.0
//! peak_update_mbps = 30.0
//! avg_access_mbps = 30.0
//!
//! [[sites]]
//! name = "P1"
//! arrays = ["xp1200", "msa1500"]
//! tape_libraries = ["high"]
//! compute = 8
//!
//! [[sites]]
//! name = "P2"
//! arrays = ["xp1200", "msa1500"]
//! tape_libraries = ["high"]
//! compute = 8
//!
//! [network]
//! class = "high"
//!
//! [failures]
//! data_object_per_year = 0.333
//! disk_array_per_year = 0.333
//! site_disaster_per_year = 0.2
//! ```

pub mod commands;
pub mod convergence;
pub mod live;
pub mod report;
pub mod saved;
pub mod spec;

pub use spec::{EnvironmentSpec, SpecError};
