//! `dsd` — the dependable storage designer CLI.
//!
//! ```text
//! dsd init                               # print an example spec (redirect to env.toml)
//! dsd tables                             # print the paper's input catalogs
//! dsd design env.toml [--budget N] [--seed N] [--save design.json]
//!     [--trace trace.jsonl] [--metrics metrics.json] [--chrome-trace trace.json]
//!     [--progress] [--progress-log progress.jsonl]
//! dsd evaluate env.toml design.json      # re-evaluate a saved design
//! dsd explain env.toml design.json [--top N] [--json report.json]
//! dsd experiment table4|figure2..figure7|ablation [--budget N] [--seed N]
//! dsd obs summary trace.jsonl [metrics.json] [--top N]
//! dsd obs profile trace.jsonl [metrics.json] [--top N] [--json profile.json]
//! dsd obs flame trace.jsonl [--chrome-trace enriched.json]
//! dsd obs curve progress.jsonl... [--json report.json] [--csv curve.csv]
//! dsd obs diff run-a.json run-b.json [--fail-on-regression]
//! dsd bench history [--quick]
//! dsd bench compare [--tolerance PCT] [--fail-on-regression]
//! dsd tournament [--budget N] [--seed N] [--apps N] [--json report.json]
//! ```

use std::error::Error;
use std::fs;
use std::process::ExitCode;

use dsd_cli::commands::{
    cmd_analyze_trace, cmd_bench_compare, cmd_bench_history, cmd_design, cmd_evaluate,
    cmd_experiment, cmd_explain, cmd_init, cmd_obs_curve, cmd_obs_diff, cmd_obs_flame,
    cmd_obs_profile, cmd_obs_summary, cmd_tables, cmd_tournament, RunOptions,
};
use dsd_cli::live::ProgressMonitor;

fn usage() -> &'static str {
    "usage:\n  dsd init\n  dsd tables\n  dsd design <spec.toml> [--budget N] [--seed N] [--portfolio] [--threads N] [--save <design.json>] [--report <report.md>] [--trace <trace.jsonl>] [--metrics <metrics.json>] [--chrome-trace <trace.json>] [--progress] [--progress-log <progress.jsonl>]\n  dsd evaluate <spec.toml> <design.json>\n  dsd explain <spec.toml> <design.json> [--top N] [--json <report.json>]\n  dsd experiment <table4|figure2|figure3|figure4|figure5|figure6|figure7|ablation> [--budget N] [--seed N] [--trace <trace.jsonl>] [--metrics <metrics.json>]\n  dsd analyze-trace <trace.csv>\n  dsd obs summary <trace.jsonl> [<metrics.json>] [--top N]\n  dsd obs profile <trace.jsonl> [<metrics.json>] [--top N] [--json <profile.json>]\n  dsd obs flame <trace.jsonl> [--chrome-trace <enriched.json>]\n  dsd obs curve <progress.jsonl>... [--lane N] [--json <report.json>] [--csv <curve.csv>]\n  dsd obs diff <run-a.json> <run-b.json> [--fail-on-regression]\n  dsd bench history [--quick] [--skip-bins]\n  dsd bench compare [--tolerance PCT] [--fail-on-regression]\n  dsd tournament [--budget N] [--seed N] [--apps N] [--json <report.json>]"
}

/// Output-file options pulled from the flags.
#[derive(Default)]
struct OutputPaths {
    save: Option<String>,
    report: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
    chrome_trace: Option<String>,
    json: Option<String>,
    csv: Option<String>,
    progress_log: Option<String>,
    top: Option<usize>,
    apps: Option<usize>,
    lane: Option<u64>,
    tolerance: Option<f64>,
    fail_on_regression: bool,
    progress: bool,
    quick: bool,
    skip_bins: bool,
}

impl OutputPaths {
    /// Whether any flag asked for observability output (and therefore a
    /// recorder must be installed around the solver run).
    fn wants_recording(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some() || self.chrome_trace.is_some()
    }
}

/// Pulls `--budget`/`--seed`/`--save`/`--report` style flags out of the
/// argument list, returning the remaining positionals.
fn parse_flags(args: &[String]) -> Result<(Vec<&str>, RunOptions, OutputPaths), Box<dyn Error>> {
    let mut positional = Vec::new();
    let mut options = RunOptions::default();
    let mut out = OutputPaths::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--budget" => {
                i += 1;
                let v = args.get(i).ok_or("--budget needs a value")?;
                options.budget = v.parse().map_err(|_| format!("bad budget: {v}"))?;
            }
            "--seed" => {
                i += 1;
                let v = args.get(i).ok_or("--seed needs a value")?;
                options.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--portfolio" => options.portfolio = true,
            "--threads" => {
                i += 1;
                let v = args.get(i).ok_or("--threads needs a value")?;
                let threads: usize = v.parse().map_err(|_| format!("bad threads: {v}"))?;
                if threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
                options.threads = Some(threads);
            }
            "--lane" => {
                i += 1;
                let v = args.get(i).ok_or("--lane needs a value")?;
                out.lane = Some(v.parse().map_err(|_| format!("bad lane: {v}"))?);
            }
            "--save" => {
                i += 1;
                out.save = Some(args.get(i).ok_or("--save needs a path")?.clone());
            }
            "--report" => {
                i += 1;
                out.report = Some(args.get(i).ok_or("--report needs a path")?.clone());
            }
            "--trace" => {
                i += 1;
                out.trace = Some(args.get(i).ok_or("--trace needs a path")?.clone());
            }
            "--metrics" => {
                i += 1;
                out.metrics = Some(args.get(i).ok_or("--metrics needs a path")?.clone());
            }
            "--chrome-trace" => {
                i += 1;
                out.chrome_trace = Some(args.get(i).ok_or("--chrome-trace needs a path")?.clone());
            }
            "--json" => {
                i += 1;
                out.json = Some(args.get(i).ok_or("--json needs a path")?.clone());
            }
            "--csv" => {
                i += 1;
                out.csv = Some(args.get(i).ok_or("--csv needs a path")?.clone());
            }
            "--progress-log" => {
                i += 1;
                out.progress_log = Some(args.get(i).ok_or("--progress-log needs a path")?.clone());
            }
            "--tolerance" => {
                i += 1;
                let v = args.get(i).ok_or("--tolerance needs a value")?;
                out.tolerance = Some(v.parse().map_err(|_| format!("bad tolerance: {v}"))?);
            }
            "--top" => {
                i += 1;
                let v = args.get(i).ok_or("--top needs a value")?;
                out.top = Some(v.parse().map_err(|_| format!("bad top: {v}"))?);
            }
            "--apps" => {
                i += 1;
                let v = args.get(i).ok_or("--apps needs a value")?;
                out.apps = Some(v.parse().map_err(|_| format!("bad apps: {v}"))?);
            }
            "--fail-on-regression" => out.fail_on_regression = true,
            "--progress" => out.progress = true,
            "--quick" => out.quick = true,
            "--skip-bins" => out.skip_bins = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag: {flag}").into());
            }
            other => positional.push(other),
        }
        i += 1;
    }
    Ok((positional, options, out))
}

/// Writes the recorder's trace/metrics to every requested path. Called
/// after the install guard has dropped, so all buffers have flushed.
fn export_observability(
    recorder: &dsd_obs::Recorder,
    outputs: &OutputPaths,
) -> Result<(), Box<dyn Error>> {
    let events = recorder.drain_events();
    if let Some(path) = &outputs.trace {
        fs::write(path, dsd_obs::export::trace_jsonl(&events))?;
        println!("trace written to {path}");
    }
    if let Some(path) = &outputs.chrome_trace {
        fs::write(path, dsd_obs::export::chrome_trace(&events))?;
        println!("chrome trace written to {path}");
    }
    if let Some(path) = &outputs.metrics {
        let snapshot = recorder.metrics_snapshot();
        fs::write(path, serde_json::to_string(&snapshot)?)?;
        println!("metrics written to {path}");
    }
    Ok(())
}

fn run() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (positional, options, outputs) = parse_flags(&args)?;
    // Solver-running commands record when any observability output was
    // requested; the guard must drop before exporting so per-thread
    // buffers flush.
    let recorder = outputs.wants_recording().then(dsd_obs::Recorder::new);
    match positional.as_slice() {
        ["init"] => print!("{}", cmd_init()),
        ["tables"] => print!("{}", cmd_tables()),
        ["design", spec_path] => {
            let spec = fs::read_to_string(spec_path)?;
            // The flight recorder streams typed progress events to a
            // consumer thread; `--progress` renders them live on stderr,
            // `--progress-log` persists them as JSONL afterwards.
            let monitor = (outputs.progress || outputs.progress_log.is_some())
                .then(|| ProgressMonitor::start(outputs.progress));
            let result = {
                let _guard = recorder.as_ref().map(dsd_obs::Recorder::install);
                let _progress_guard = monitor.as_ref().map(ProgressMonitor::install);
                cmd_design(&spec, options)
            };
            if let Some(monitor) = monitor {
                let dropped = monitor.dropped();
                let events = monitor.finish();
                if let Some(path) = &outputs.progress_log {
                    fs::write(path, dsd_obs::progress::progress_jsonl(&events))?;
                    println!("progress log written to {path}");
                }
                if dropped > 0 {
                    eprintln!("progress: {dropped} events dropped by the bounded queue");
                }
            }
            if let Some(recorder) = &recorder {
                export_observability(recorder, &outputs)?;
            }
            let (text, json, md) = result?;
            print!("{text}");
            if let Some(path) = outputs.save {
                fs::write(&path, json)?;
                println!("design saved to {path}");
            }
            if let Some(path) = outputs.report {
                fs::write(&path, md)?;
                println!("report written to {path}");
            }
        }
        ["evaluate", spec_path, design_path] => {
            let spec = fs::read_to_string(spec_path)?;
            let design = fs::read_to_string(design_path)?;
            print!("{}", cmd_evaluate(&spec, &design)?);
        }
        ["experiment", name] => {
            let result = {
                let _guard = recorder.as_ref().map(dsd_obs::Recorder::install);
                cmd_experiment(name, options)
            };
            if let Some(recorder) = &recorder {
                export_observability(recorder, &outputs)?;
            }
            print!("{}", result?);
        }
        ["analyze-trace", trace_path] => {
            let trace = fs::read_to_string(trace_path)?;
            print!("{}", cmd_analyze_trace(&trace)?);
        }
        ["explain", spec_path, design_path] => {
            let spec = fs::read_to_string(spec_path)?;
            let design = fs::read_to_string(design_path)?;
            let (text, json) = cmd_explain(&spec, &design, outputs.top.unwrap_or(5))?;
            print!("{text}");
            if let Some(path) = outputs.json {
                fs::write(&path, json)?;
                println!("explain report written to {path}");
            }
        }
        ["obs", "summary", trace_path] => {
            let trace = fs::read_to_string(trace_path)?;
            print!("{}", cmd_obs_summary(&trace, None, outputs.top.unwrap_or(10))?);
        }
        ["obs", "summary", trace_path, metrics_path] => {
            let trace = fs::read_to_string(trace_path)?;
            let metrics = fs::read_to_string(metrics_path)?;
            print!("{}", cmd_obs_summary(&trace, Some(&metrics), outputs.top.unwrap_or(10))?);
        }
        ["obs", "profile", rest @ ..] if matches!(rest.len(), 1 | 2) => {
            let trace = fs::read_to_string(rest[0])?;
            let metrics = rest.get(1).map(fs::read_to_string).transpose()?;
            let (text, json) =
                cmd_obs_profile(&trace, metrics.as_deref(), outputs.top.unwrap_or(10))?;
            print!("{text}");
            if let Some(path) = outputs.json {
                fs::write(&path, json)?;
                println!("profile written to {path}");
            }
        }
        ["obs", "flame", trace_path] => {
            let trace = fs::read_to_string(trace_path)?;
            let (collapsed, enriched) = cmd_obs_flame(&trace)?;
            print!("{collapsed}");
            if let Some(path) = outputs.chrome_trace {
                fs::write(&path, enriched)?;
                println!("enriched chrome trace written to {path}");
            }
        }
        ["tournament"] => {
            let (text, json, violations) = cmd_tournament(options, outputs.apps.unwrap_or(4))?;
            print!("{text}");
            if let Some(path) = outputs.json {
                fs::write(&path, json)?;
                println!("tournament report written to {path}");
            }
            if violations > 0 {
                return Err(format!("{violations} certificate violations detected").into());
            }
        }
        ["obs", "curve", paths @ ..] if !paths.is_empty() => {
            let mut runs = Vec::new();
            for path in paths {
                let text = fs::read_to_string(path)?;
                let name = std::path::Path::new(path)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or(path)
                    .to_string();
                runs.push((name, text));
            }
            let (text, json, csv) = cmd_obs_curve(&runs, outputs.lane)?;
            print!("{text}");
            if let Some(path) = outputs.json {
                fs::write(&path, json)?;
                println!("curve report written to {path}");
            }
            if let Some(path) = outputs.csv {
                fs::write(&path, csv)?;
                println!("curve csv written to {path}");
            }
        }
        ["bench", "history"] => {
            print!("{}", cmd_bench_history(outputs.quick, outputs.skip_bins)?);
        }
        ["bench", "compare"] => {
            let tolerance = outputs.tolerance.unwrap_or(dsd_bench::history::DEFAULT_TOLERANCE_PCT);
            let (text, regressions) = cmd_bench_compare(tolerance)?;
            print!("{text}");
            if outputs.fail_on_regression && regressions > 0 {
                return Err(format!("{regressions} perf regressions beyond tolerance").into());
            }
        }
        ["obs", "diff", a_path, b_path] => {
            let a = fs::read_to_string(a_path)?;
            let b = fs::read_to_string(b_path)?;
            let (text, regressions) = cmd_obs_diff(&a, &b)?;
            print!("{text}");
            if outputs.fail_on_regression && regressions > 0 {
                return Err(format!("{regressions} metric regressions detected").into());
            }
        }
        _ => return Err(usage().into()),
    }
    Ok(())
}

/// Renders an error as a one-line structured JSON event (machine-
/// readable counterpart of the human `error:` line on stderr).
fn error_event(e: &dyn Error) -> String {
    use serde::Value;
    dsd_obs::export::to_compact_json(&Value::Map(vec![
        ("event".to_string(), Value::Str("error".to_string())),
        ("message".to_string(), Value::Str(e.to_string())),
    ]))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", error_event(e.as_ref()));
            ExitCode::FAILURE
        }
    }
}
