//! `dsd` — the dependable storage designer CLI.
//!
//! ```text
//! dsd init                               # print an example spec (redirect to env.toml)
//! dsd tables                             # print the paper's input catalogs
//! dsd design env.toml [--budget N] [--seed N] [--save design.json]
//! dsd evaluate env.toml design.json      # re-evaluate a saved design
//! dsd experiment table4|figure2..figure7|ablation [--budget N] [--seed N]
//! ```

use std::error::Error;
use std::fs;
use std::process::ExitCode;

use dsd_cli::commands::{
    cmd_analyze_trace, cmd_design, cmd_evaluate, cmd_experiment, cmd_init, cmd_tables, RunOptions,
};

fn usage() -> &'static str {
    "usage:\n  dsd init\n  dsd tables\n  dsd design <spec.toml> [--budget N] [--seed N] [--save <design.json>] [--report <report.md>]\n  dsd evaluate <spec.toml> <design.json>\n  dsd experiment <table4|figure2|figure3|figure4|figure5|figure6|figure7|ablation> [--budget N] [--seed N]\n  dsd analyze-trace <trace.csv>"
}

/// Output-file options pulled from the flags.
#[derive(Default)]
struct OutputPaths {
    save: Option<String>,
    report: Option<String>,
}

/// Pulls `--budget`/`--seed`/`--save`/`--report` style flags out of the
/// argument list, returning the remaining positionals.
fn parse_flags(args: &[String]) -> Result<(Vec<&str>, RunOptions, OutputPaths), Box<dyn Error>> {
    let mut positional = Vec::new();
    let mut options = RunOptions::default();
    let mut out = OutputPaths::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--budget" => {
                i += 1;
                let v = args.get(i).ok_or("--budget needs a value")?;
                options.budget = v.parse().map_err(|_| format!("bad budget: {v}"))?;
            }
            "--seed" => {
                i += 1;
                let v = args.get(i).ok_or("--seed needs a value")?;
                options.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--save" => {
                i += 1;
                out.save = Some(args.get(i).ok_or("--save needs a path")?.clone());
            }
            "--report" => {
                i += 1;
                out.report = Some(args.get(i).ok_or("--report needs a path")?.clone());
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag: {flag}").into());
            }
            other => positional.push(other),
        }
        i += 1;
    }
    Ok((positional, options, out))
}

fn run() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (positional, options, outputs) = parse_flags(&args)?;
    match positional.as_slice() {
        ["init"] => print!("{}", cmd_init()),
        ["tables"] => print!("{}", cmd_tables()),
        ["design", spec_path] => {
            let spec = fs::read_to_string(spec_path)?;
            let (text, json, md) = cmd_design(&spec, options)?;
            print!("{text}");
            if let Some(path) = outputs.save {
                fs::write(&path, json)?;
                println!("design saved to {path}");
            }
            if let Some(path) = outputs.report {
                fs::write(&path, md)?;
                println!("report written to {path}");
            }
        }
        ["evaluate", spec_path, design_path] => {
            let spec = fs::read_to_string(spec_path)?;
            let design = fs::read_to_string(design_path)?;
            print!("{}", cmd_evaluate(&spec, &design)?);
        }
        ["experiment", name] => print!("{}", cmd_experiment(name, options)?),
        ["analyze-trace", trace_path] => {
            let trace = fs::read_to_string(trace_path)?;
            print!("{}", cmd_analyze_trace(&trace)?);
        }
        _ => return Err(usage().into()),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
