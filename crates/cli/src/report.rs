//! Markdown design reports: everything a storage architect would hand to
//! a review board — the chosen design, its costs, how it behaves under
//! every failure scenario, device utilization, and the double-failure
//! exposure.

use std::fmt::Write as _;

use dsd_core::{Candidate, Certificate, CostAttribution, Environment, TechniqueMarginal};
use dsd_recovery::Evaluator;
use dsd_resources::{ArrayRef, DeviceRef, TapeRef};
use dsd_units::Dollars;

/// Renders a complete markdown report for an evaluated candidate.
///
/// # Panics
///
/// Panics if the candidate has not been evaluated.
#[must_use]
pub fn markdown(env: &Environment, candidate: &Candidate) -> String {
    let mut out = String::new();
    let cost = candidate.cost();

    let _ = writeln!(out, "# Dependable storage design report\n");
    let _ = writeln!(
        out,
        "- applications: {}\n- sites: {}\n- failure model: {}\n",
        env.workloads.len(),
        env.topology.site_count(),
        env.failures.rates()
    );

    let _ = writeln!(out, "## Chosen design\n");
    let _ = writeln!(out, "| application | class | technique | primary | mirror | config |");
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for (app, a) in candidate.assignments() {
        let workload = &env.workloads[*app];
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} |",
            workload.name,
            workload.class_with(&env.thresholds),
            env.catalog[a.technique].name,
            a.placement.primary,
            a.placement.mirror.map_or("—".into(), |m| m.to_string()),
            a.config
        );
    }

    let _ = writeln!(out, "\n## Annual cost\n");
    let _ = writeln!(out, "| component | $/yr |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(out, "| amortized outlay | {} |", cost.outlay);
    let _ = writeln!(out, "| expected outage penalty | {} |", cost.penalties.outage);
    let _ = writeln!(out, "| expected loss penalty | {} |", cost.penalties.loss);
    let _ = writeln!(out, "| **total** | **{}** |", cost.total());

    let protections = candidate.protections(env);
    let scenarios = env.failures.enumerate(candidate.primaries());
    let evaluator = Evaluator::new(&env.workloads, candidate.provision(), env.recovery);

    let _ = writeln!(out, "\n## Cost attribution\n");
    let _ = writeln!(out, "| resource kind | items | purchase | amortized $/yr |");
    let _ = writeln!(out, "|---|---|---|---|");
    let attribution = CostAttribution {
        outlay_items: candidate.provision().outlay_items(),
        vault_media_annual: candidate.vault_media_annual(env),
        penalty_items: evaluator.annual_penalties_attributed(&protections, &scenarios).1,
        cost: cost.clone(),
    };
    for (kind, purchase, n) in attribution.outlay_by_kind() {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} |",
            kind.label(),
            n,
            purchase,
            purchase.amortized_annual()
        );
    }
    let _ = writeln!(out, "| vault media | — | — | {} |", attribution.vault_media_annual);
    let _ = writeln!(out, "\nDominant penalty scenarios (likelihood-weighted):\n");
    let _ = writeln!(out, "| application | scenario | likelihood | weighted $/yr |");
    let _ = writeln!(out, "|---|---|---|---|");
    for item in attribution.top_items(5) {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} |",
            env.workloads[item.app].name,
            item.scope,
            item.likelihood,
            item.weighted_total()
        );
    }

    let _ = writeln!(out, "\n## Recovery behavior by scenario\n");
    let _ = writeln!(out, "| scenario | likelihood | application | path | outage | loss |");
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for scenario in &scenarios {
        let outcome = evaluator.evaluate_scenario(&protections, &scenario.scope);
        for o in &outcome.outcomes {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} |",
                scenario.scope,
                scenario.likelihood,
                env.workloads[o.app].name,
                o.path,
                o.recovery_time,
                o.loss_time
            );
        }
    }

    let windows =
        evaluator.vulnerability_windows(&protections, &scenarios, env.failures.rates().data_object);
    if !windows.is_empty() {
        let _ = writeln!(out, "\n## Double-failure exposure\n");
        let _ =
            writeln!(out, "| first failure | application | window | fallback | expected $/yr |");
        let _ = writeln!(out, "|---|---|---|---|---|");
        let mut total = Dollars::ZERO;
        for v in &windows {
            total += v.expected_annual;
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} |",
                v.scope,
                env.workloads[v.app].name,
                v.window,
                v.fallback_copy.map_or("unprotected".into(), |c| c.to_string()),
                v.expected_annual
            );
        }
        let _ = writeln!(out, "\nTotal expected exposure: **{total}** per year.");
    }

    let _ = writeln!(out, "\n## Availability\n");
    let _ = writeln!(out, "| application | expected downtime/yr | availability | nines |");
    let _ = writeln!(out, "|---|---|---|---|");
    for a in evaluator.availability(&protections, &scenarios) {
        let _ = writeln!(
            out,
            "| {} | {} | {:.5} | {:.1} |",
            env.workloads[a.app].name,
            a.expected_annual_downtime,
            a.availability,
            a.nines()
        );
    }

    let _ = writeln!(out, "\n## Device utilization\n");
    let _ = writeln!(out, "| device | bandwidth | allocated | utilization |");
    let _ = writeln!(out, "|---|---|---|---|");
    let provision = candidate.provision();
    for site in env.topology.sites() {
        for slot in 0..site.array_slots.len() {
            let r = ArrayRef { site: site.id, slot };
            if provision.array(r).is_some() {
                let d = DeviceRef::Array(r);
                let _ = writeln!(
                    out,
                    "| {} ({}) | {} | {} | {:.0}% |",
                    r,
                    site.array_slots[slot].name,
                    provision.device_bandwidth(d),
                    provision.device_alloc_bandwidth(d),
                    provision.utilization(d) * 100.0
                );
            }
        }
        for slot in 0..site.tape_slots.len() {
            let r = TapeRef { site: site.id, slot };
            if provision.tape(r).is_some() {
                let d = DeviceRef::Tape(r);
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {:.0}% |",
                    r,
                    provision.device_bandwidth(d),
                    provision.device_alloc_bandwidth(d),
                    provision.utilization(d) * 100.0
                );
            }
        }
    }
    for rid in provision.active_routes() {
        let d = DeviceRef::Route(rid);
        let route = env.topology.route(rid);
        let _ = writeln!(
            out,
            "| {} ({}—{}) | {} | {} | {:.0}% |",
            rid,
            env.topology.site(route.a).name,
            env.topology.site(route.b).name,
            provision.device_bandwidth(d),
            provision.device_alloc_bandwidth(d),
            provision.utilization(d) * 100.0
        );
    }

    out
}

/// Renders the `dsd explain` breakdown: the paper-style attribution
/// tables (outlay by resource kind, per-application dominant scenarios
/// with explicit likelihood weighting) plus the marginal cost of every
/// chosen technique against its runner-up. `top` bounds the per-app and
/// overall scenario tables; `certificate` is the relaxation lower bound
/// checked against the achieved cost.
#[must_use]
pub fn explain_text(
    env: &Environment,
    attribution: &CostAttribution,
    marginals: &[TechniqueMarginal],
    certificate: &Certificate,
    top: usize,
) -> String {
    let mut out = String::new();
    let cost = &attribution.cost;

    let _ = writeln!(out, "objective: {}", env.objective.explain(cost));
    let _ = writeln!(
        out,
        "line items reproduce the evaluated total bit-for-bit: {} = {}",
        attribution.total(),
        cost.total()
    );

    let _ = writeln!(out, "\ncertificate:");
    let _ = writeln!(out, "  relaxation lower bound: {}/yr", certificate.lower_bound);
    let _ = writeln!(out, "  achieved cost:          {}/yr", certificate.achieved);
    let _ = writeln!(out, "  optimality gap:         {:.1}%", certificate.gap_pct);
    let _ = writeln!(
        out,
        "  dominant relaxation term: {} (outlay floor {}, penalty floor {})",
        certificate.dominant_term, certificate.outlay_floor, certificate.penalty_floor
    );

    let _ = writeln!(out, "\noutlay by resource kind:");
    for (kind, purchase, n) in attribution.outlay_by_kind() {
        let _ = writeln!(
            out,
            "  {:<14} x{:<3} purchase {:<16} amortized {}/yr",
            kind.label(),
            n,
            purchase.to_string(),
            purchase.amortized_annual()
        );
    }
    let _ = writeln!(
        out,
        "  {:<14}      annual   {}/yr",
        "vault media", attribution.vault_media_annual
    );
    let _ = writeln!(out, "  annual outlay: {}", attribution.outlay_annual());

    let (outage_total, loss_total) = attribution.penalty_totals();
    let _ = writeln!(
        out,
        "\npenalties (likelihood-weighted): outage {} + loss {} = {}/yr",
        outage_total,
        loss_total,
        outage_total + loss_total
    );
    for (app, (outage, loss)) in attribution.per_app_totals() {
        let workload = &env.workloads[app];
        let _ = writeln!(out, "  {} (outage {}, loss {}):", workload.name, outage, loss);
        for item in attribution.top_items_for(app, top) {
            let _ = writeln!(
                out,
                "    {:<34} {:<12} x {:<14} -> {}/yr via {}",
                item.scope.to_string(),
                item.likelihood.to_string(),
                (item.outage_raw + item.loss_raw).to_string(),
                item.weighted_total(),
                item.path
            );
        }
    }

    let _ = writeln!(out, "\ntop {top} dominant scenarios overall:");
    let grand_total = cost.total().as_f64();
    for (rank, item) in attribution.top_items(top).iter().enumerate() {
        let share = if grand_total > 0.0 {
            item.weighted_total().as_f64() / grand_total * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  {:>2}. {:<28} {:<34} {}/yr ({share:.1}% of total)",
            rank + 1,
            env.workloads[item.app].name,
            item.scope.to_string(),
            item.weighted_total()
        );
    }

    let _ = writeln!(out, "\nmarginal cost of chosen techniques vs runner-up:");
    for m in marginals {
        match &m.runner_up {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "  {:<28} {:<34} runner-up {:<34} marginal {}{}/yr",
                    env.workloads[m.app].name,
                    m.chosen,
                    r.technique,
                    if r.marginal >= 0.0 { "+" } else { "-" },
                    Dollars::new(r.marginal.abs())
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  {:<28} {:<34} no feasible alternative",
                    env.workloads[m.app].name, m.chosen
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_core::{Budget, DesignSolver};
    use dsd_scenarios::environments::peer_sites;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn report_contains_every_section() {
        let env = peer_sites();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let best =
            DesignSolver::new(&env).solve(Budget::iterations(20), &mut rng).best.expect("feasible");
        let report = markdown(&env, &best);
        for heading in [
            "# Dependable storage design report",
            "## Chosen design",
            "## Annual cost",
            "## Recovery behavior by scenario",
            "## Availability",
            "## Device utilization",
        ] {
            assert!(report.contains(heading), "missing {heading}");
        }
        assert!(report.contains("central banking"));
        assert!(report.contains("site disaster"));
        // Markdown tables are well-formed: every table row has equal pipes
        // within its section header row.
        for line in report.lines().filter(|l| l.starts_with('|')) {
            assert!(line.ends_with('|'), "unterminated row: {line}");
        }
    }

    #[test]
    fn report_includes_vulnerability_when_failover_present() {
        let env = peer_sites();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let best =
            DesignSolver::new(&env).solve(Budget::iterations(30), &mut rng).best.expect("feasible");
        let has_failover =
            best.assignments().values().any(|a| env.catalog[a.technique].is_failover());
        let report = markdown(&env, &best);
        assert_eq!(report.contains("## Double-failure exposure"), has_failover);
    }
}
