//! Convergence-curve reports over flight-recorder logs (`dsd obs
//! curve`).
//!
//! A progress log (`dsd design --progress-log`) is a JSONL stream of
//! typed events; this module turns one or more of them into a report:
//! cost and certificate gap versus elapsed time, time-to-X%-gap
//! milestones, per-worker lanes, and — with several runs — an A/B table
//! against the first run. Parsing is lenient (torn tails are counted,
//! never fatal), matching the rest of the observability surface.

use std::fmt::Write as _;

use dsd_obs::progress::{parse_progress_jsonl, ProgressKind};
use dsd_obs::ProgressEvent;
use serde::Value;

/// Gap milestones (percent above the certificate lower bound) reported
/// as time-to-gap. 5% is the headline number the bench history tracks.
pub const GAP_THRESHOLDS: &[f64] = &[50.0, 20.0, 10.0, 5.0, 2.0, 1.0];

/// One incumbent-improvement sample on the curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurveSample {
    /// Seconds since the channel epoch.
    pub elapsed_secs: f64,
    /// Incumbent objective (total annual cost, dollars).
    pub cost: f64,
    /// Gap above the certificate lower bound, percent, when known.
    pub gap_pct: Option<f64>,
}

/// Per-worker lane digest.
#[derive(Debug, Clone, PartialEq)]
pub struct Lane {
    /// Dense worker index from the progress channel.
    pub worker: u64,
    /// Last cumulative evaluation count reported by this lane.
    pub evals: u64,
    /// Last heartbeat throughput, when the lane heartbeat at all.
    pub evals_per_sec: Option<f64>,
    /// Incumbent improvements emitted by this lane.
    pub incumbents: usize,
    /// Heartbeats emitted by this lane.
    pub heartbeats: usize,
    /// Tasks this lane stole from other workers' queues (portfolio runs).
    pub steals: u64,
    /// Times this lane adopted the shared incumbent (portfolio runs).
    pub adoptions: u64,
}

/// One parsed progress log.
#[derive(Debug, Clone)]
pub struct RunCurve {
    /// Display name (the file stem of the log).
    pub name: String,
    /// Every parsed event, in emission order.
    pub events: Vec<ProgressEvent>,
    /// Malformed lines skipped by the lenient parser.
    pub skipped: u64,
}

impl RunCurve {
    /// Parses a progress log leniently. Errors only when nothing parses
    /// from non-blank input (the file is not a progress log at all).
    ///
    /// # Errors
    ///
    /// A message naming the run and the first parse error.
    pub fn parse(name: &str, text: &str) -> Result<RunCurve, String> {
        let parsed = parse_progress_jsonl(text);
        if parsed.events.is_empty() && !text.trim().is_empty() {
            let detail = parsed.first_error.unwrap_or_else(|| "no parseable lines".to_string());
            return Err(format!("{name}: not a progress log ({detail})"));
        }
        Ok(RunCurve { name: name.to_string(), events: parsed.events, skipped: parsed.skipped })
    }

    /// The incumbent-improvement curve, in time order.
    #[must_use]
    pub fn incumbents(&self) -> Vec<CurveSample> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                ProgressKind::IncumbentImproved { cost, gap_pct, .. } => {
                    Some(CurveSample { elapsed_secs: e.elapsed_secs(), cost, gap_pct })
                }
                _ => None,
            })
            .collect()
    }

    /// Final incumbent cost (the run's reported objective).
    #[must_use]
    pub fn final_cost(&self) -> Option<f64> {
        self.incumbents().last().map(|s| s.cost)
    }

    /// Final incumbent gap above the lower bound.
    #[must_use]
    pub fn final_gap(&self) -> Option<f64> {
        self.incumbents().last().and_then(|s| s.gap_pct)
    }

    /// Total evaluations: sum over lanes of each lane's last cumulative
    /// count.
    #[must_use]
    pub fn total_evals(&self) -> u64 {
        self.lanes().iter().map(|l| l.evals).sum()
    }

    /// Earliest time at which the incumbent gap reached `pct` percent or
    /// better; `None` when the run never got there (or logged no gaps).
    #[must_use]
    pub fn time_to_gap(&self, pct: f64) -> Option<f64> {
        self.incumbents()
            .iter()
            .find(|s| s.gap_pct.is_some_and(|g| g <= pct))
            .map(|s| s.elapsed_secs)
    }

    /// Per-worker lane digests, by worker index.
    #[must_use]
    pub fn lanes(&self) -> Vec<Lane> {
        let mut lanes: std::collections::BTreeMap<u64, Lane> = std::collections::BTreeMap::new();
        for event in &self.events {
            let lane = lanes.entry(event.worker).or_insert(Lane {
                worker: event.worker,
                evals: 0,
                evals_per_sec: None,
                incumbents: 0,
                heartbeats: 0,
                steals: 0,
                adoptions: 0,
            });
            match &event.kind {
                ProgressKind::IncumbentImproved { evals, .. } => {
                    lane.evals = lane.evals.max(*evals);
                    lane.incumbents += 1;
                }
                ProgressKind::WorkerHeartbeat { evals, evals_per_sec, .. } => {
                    lane.evals = lane.evals.max(*evals);
                    lane.evals_per_sec = Some(*evals_per_sec);
                    lane.heartbeats += 1;
                }
                ProgressKind::Done { evals, .. } => lane.evals = lane.evals.max(*evals),
                ProgressKind::TaskStolen { steals, .. } => {
                    lane.steals = lane.steals.max(*steals);
                }
                ProgressKind::IncumbentAdopted { adoptions, .. } => {
                    lane.adoptions = lane.adoptions.max(*adoptions);
                }
                ProgressKind::PhaseEntered { .. } | ProgressKind::Restart { .. } => {}
            }
        }
        lanes.into_values().collect()
    }

    /// Keeps only events emitted on worker lane `worker` (the `--lane`
    /// filter): the curve, milestones, and lane digest then describe that
    /// worker alone. Returns `false` when the lane does not appear in the
    /// stream (the events are left untouched).
    pub fn filter_lane(&mut self, worker: u64) -> bool {
        if !self.events.iter().any(|e| e.worker == worker) {
            return false;
        }
        self.events.retain(|e| e.worker == worker);
        true
    }

    /// Tasks stolen across all lanes (portfolio cooperation).
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.lanes().iter().map(|l| l.steals).sum()
    }

    /// Incumbent adoptions across all lanes (portfolio cooperation).
    #[must_use]
    pub fn adoptions(&self) -> u64 {
        self.lanes().iter().map(|l| l.adoptions).sum()
    }

    /// Restarts reported (maximum cumulative count in the stream).
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                ProgressKind::Restart { restarts } => Some(restarts),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Seconds spanned by the stream.
    #[must_use]
    pub fn duration_secs(&self) -> f64 {
        self.events.last().map_or(0.0, ProgressEvent::elapsed_secs)
    }
}

/// Human-readable report over one or more runs.
#[must_use]
pub fn render(runs: &[RunCurve]) -> String {
    let mut out = String::new();
    for run in runs {
        let _ = writeln!(
            out,
            "run {}: {} events ({} skipped), {:.3}s, {} restarts",
            run.name,
            run.events.len(),
            run.skipped,
            run.duration_secs(),
            run.restarts()
        );
        let samples = run.incumbents();
        match samples.last() {
            Some(last) => {
                let gap = last.gap_pct.map_or("—".to_string(), |g| format!("{g:.2}%"));
                let _ = writeln!(
                    out,
                    "  final: cost ${:.2}, gap {gap}, {} evals",
                    last.cost,
                    run.total_evals()
                );
            }
            None => {
                let _ = writeln!(out, "  final: no incumbents logged");
            }
        }
        let _ = writeln!(out, "  convergence (elapsed, cost, gap):");
        for s in &samples {
            let gap = s.gap_pct.map_or("     —".to_string(), |g| format!("{g:6.2}%"));
            let _ = writeln!(out, "    {:>9.4}s  ${:<14.2} {gap}", s.elapsed_secs, s.cost);
        }
        let milestones: Vec<String> = GAP_THRESHOLDS
            .iter()
            .map(|&pct| {
                let t = run.time_to_gap(pct).map_or("—".to_string(), |t| format!("{t:.4}s"));
                format!("<={pct:.0}% {t}")
            })
            .collect();
        let _ = writeln!(out, "  time to gap: {}", milestones.join(" | "));
        if run.steals() > 0 || run.adoptions() > 0 {
            let _ = writeln!(
                out,
                "  cooperation: {} steals, {} adoptions",
                run.steals(),
                run.adoptions()
            );
        }
        let _ = writeln!(out, "  worker lanes:");
        for lane in run.lanes() {
            let rate = lane.evals_per_sec.map_or("—".to_string(), |r| format!("{r:.0}/s"));
            let mut cooperation = String::new();
            if lane.steals > 0 {
                cooperation.push_str(&format!(", {} steals", lane.steals));
            }
            if lane.adoptions > 0 {
                cooperation.push_str(&format!(", {} adoptions", lane.adoptions));
            }
            let _ = writeln!(
                out,
                "    worker {}: {} evals ({rate}), {} incumbents, {} heartbeats{cooperation}",
                lane.worker, lane.evals, lane.incumbents, lane.heartbeats
            );
        }
    }
    if runs.len() >= 2 {
        let _ = writeln!(out, "A/B vs {}:", runs[0].name);
        let base = &runs[0];
        for run in runs {
            let cost = run.final_cost();
            let cost_delta = match (base.final_cost(), cost) {
                (Some(a), Some(b)) if a != 0.0 && !std::ptr::eq(run, base) => {
                    format!(" ({:+.2}%)", (b - a) / a * 100.0)
                }
                _ => String::new(),
            };
            let _ = writeln!(
                out,
                "  {:<24} cost {}{cost_delta}  gap {}  time-to-5% {}",
                run.name,
                cost.map_or("—".to_string(), |c| format!("${c:.2}")),
                run.final_gap().map_or("—".to_string(), |g| format!("{g:.2}%")),
                run.time_to_gap(5.0).map_or("—".to_string(), |t| format!("{t:.4}s")),
            );
        }
    }
    out
}

/// Machine-readable report (one `runs` array; mirrors [`render`]).
#[must_use]
pub fn json_report(runs: &[RunCurve]) -> Value {
    let opt = |v: Option<f64>| v.map_or(Value::Null, Value::Float);
    let run_values = runs
        .iter()
        .map(|run| {
            let curve = run
                .incumbents()
                .iter()
                .map(|s| {
                    Value::Map(vec![
                        ("elapsed_secs".to_string(), Value::Float(s.elapsed_secs)),
                        ("cost".to_string(), Value::Float(s.cost)),
                        ("gap_pct".to_string(), opt(s.gap_pct)),
                    ])
                })
                .collect();
            let milestones = GAP_THRESHOLDS
                .iter()
                .map(|&pct| (format!("time_to_{pct:.0}pct_gap_secs"), opt(run.time_to_gap(pct))))
                .collect();
            let lanes = run
                .lanes()
                .iter()
                .map(|lane| {
                    Value::Map(vec![
                        (
                            "worker".to_string(),
                            Value::Int(i64::try_from(lane.worker).unwrap_or(i64::MAX)),
                        ),
                        (
                            "evals".to_string(),
                            Value::Int(i64::try_from(lane.evals).unwrap_or(i64::MAX)),
                        ),
                        ("evals_per_sec".to_string(), opt(lane.evals_per_sec)),
                        (
                            "incumbents".to_string(),
                            Value::Int(i64::try_from(lane.incumbents).unwrap_or(i64::MAX)),
                        ),
                        (
                            "heartbeats".to_string(),
                            Value::Int(i64::try_from(lane.heartbeats).unwrap_or(i64::MAX)),
                        ),
                        (
                            "steals".to_string(),
                            Value::Int(i64::try_from(lane.steals).unwrap_or(i64::MAX)),
                        ),
                        (
                            "adoptions".to_string(),
                            Value::Int(i64::try_from(lane.adoptions).unwrap_or(i64::MAX)),
                        ),
                    ])
                })
                .collect();
            Value::Map(vec![
                ("name".to_string(), Value::Str(run.name.clone())),
                (
                    "events".to_string(),
                    Value::Int(i64::try_from(run.events.len()).unwrap_or(i64::MAX)),
                ),
                ("skipped".to_string(), Value::Int(i64::try_from(run.skipped).unwrap_or(i64::MAX))),
                ("duration_secs".to_string(), Value::Float(run.duration_secs())),
                ("final_cost".to_string(), opt(run.final_cost())),
                ("final_gap_pct".to_string(), opt(run.final_gap())),
                (
                    "restarts".to_string(),
                    Value::Int(i64::try_from(run.restarts()).unwrap_or(i64::MAX)),
                ),
                ("steals".to_string(), Value::Int(i64::try_from(run.steals()).unwrap_or(i64::MAX))),
                (
                    "adoptions".to_string(),
                    Value::Int(i64::try_from(run.adoptions()).unwrap_or(i64::MAX)),
                ),
                ("milestones".to_string(), Value::Map(milestones)),
                ("curve".to_string(), Value::Seq(curve)),
                ("lanes".to_string(), Value::Seq(lanes)),
            ])
        })
        .collect();
    Value::Map(vec![("runs".to_string(), Value::Seq(run_values))])
}

/// CSV export of the incumbent curves: `run,elapsed_secs,cost,gap_pct`
/// (one row per improvement, all runs concatenated — ready for A/B
/// plotting).
#[must_use]
pub fn csv(runs: &[RunCurve]) -> String {
    let mut out = String::from("run,elapsed_secs,cost,gap_pct\n");
    for run in runs {
        for s in run.incumbents() {
            let gap = s.gap_pct.map_or(String::new(), |g| format!("{g}"));
            let _ = writeln!(out, "{},{},{},{gap}", run.name, s.elapsed_secs, s.cost);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_obs::progress::progress_jsonl;

    fn sample_log() -> String {
        let events = vec![
            ProgressEvent {
                worker: 0,
                elapsed_ns: 1_000_000,
                kind: ProgressKind::PhaseEntered { phase: "greedy".into() },
            },
            ProgressEvent {
                worker: 0,
                elapsed_ns: 2_000_000,
                kind: ProgressKind::IncumbentImproved {
                    cost: 2000.0,
                    gap_pct: Some(40.0),
                    evals: 5,
                },
            },
            ProgressEvent {
                worker: 1,
                elapsed_ns: 3_000_000,
                kind: ProgressKind::WorkerHeartbeat {
                    evals: 8,
                    evals_per_sec: 100.0,
                    cache_hit_rate: 0.25,
                },
            },
            ProgressEvent {
                worker: 0,
                elapsed_ns: 4_000_000,
                kind: ProgressKind::IncumbentImproved {
                    cost: 1500.0,
                    gap_pct: Some(4.0),
                    evals: 9,
                },
            },
            ProgressEvent {
                worker: 0,
                elapsed_ns: 5_000_000,
                kind: ProgressKind::Done { cost: Some(1500.0), gap_pct: Some(4.0), evals: 9 },
            },
        ];
        progress_jsonl(&events)
    }

    #[test]
    fn curve_digests_a_log() {
        let run = RunCurve::parse("a", &sample_log()).expect("parses");
        assert_eq!(run.events.len(), 5);
        assert_eq!(run.skipped, 0);
        assert_eq!(run.final_cost(), Some(1500.0));
        assert_eq!(run.final_gap(), Some(4.0));
        assert_eq!(run.total_evals(), 17, "lane 0 at 9 + lane 1 at 8");
        assert_eq!(run.time_to_gap(5.0), Some(0.004));
        assert_eq!(run.time_to_gap(50.0), Some(0.002));
        assert_eq!(run.time_to_gap(1.0), None);
        assert_eq!(run.lanes().len(), 2);
    }

    fn cooperative_log() -> String {
        let mut events = vec![
            ProgressEvent {
                worker: 0,
                elapsed_ns: 1_000_000,
                kind: ProgressKind::IncumbentImproved {
                    cost: 2000.0,
                    gap_pct: Some(40.0),
                    evals: 5,
                },
            },
            ProgressEvent {
                worker: 1,
                elapsed_ns: 2_000_000,
                kind: ProgressKind::TaskStolen { victim: 0, steals: 1 },
            },
            ProgressEvent {
                worker: 1,
                elapsed_ns: 3_000_000,
                kind: ProgressKind::TaskStolen { victim: 0, steals: 2 },
            },
            ProgressEvent {
                worker: 1,
                elapsed_ns: 4_000_000,
                kind: ProgressKind::IncumbentAdopted { cost: 2000.0, adoptions: 1 },
            },
            ProgressEvent {
                worker: 1,
                elapsed_ns: 5_000_000,
                kind: ProgressKind::IncumbentImproved {
                    cost: 1800.0,
                    gap_pct: Some(20.0),
                    evals: 7,
                },
            },
        ];
        events.push(ProgressEvent {
            worker: 0,
            elapsed_ns: 6_000_000,
            kind: ProgressKind::Done { cost: Some(1800.0), gap_pct: Some(20.0), evals: 9 },
        });
        progress_jsonl(&events)
    }

    #[test]
    fn cooperation_counts_land_in_lanes_and_reports() {
        let run = RunCurve::parse("coop", &cooperative_log()).expect("parses");
        assert_eq!(run.steals(), 2);
        assert_eq!(run.adoptions(), 1);
        let lanes = run.lanes();
        assert_eq!(lanes[0].steals, 0);
        assert_eq!(lanes[1].steals, 2);
        assert_eq!(lanes[1].adoptions, 1);
        let text = render(std::slice::from_ref(&run));
        assert!(text.contains("cooperation: 2 steals, 1 adoptions"), "{text}");
        assert!(text.contains("2 steals, 1 adoptions"), "{text}");
        let value = json_report(&[run]);
        let first = match value.get("runs") {
            Some(Value::Seq(v)) => v[0].clone(),
            other => panic!("runs array missing: {other:?}"),
        };
        assert!(matches!(first.get("steals"), Some(Value::Int(2))));
        assert!(matches!(first.get("adoptions"), Some(Value::Int(1))));
    }

    #[test]
    fn lane_filter_narrows_the_curve_to_one_worker() {
        let mut run = RunCurve::parse("coop", &cooperative_log()).expect("parses");
        assert!(!run.filter_lane(7), "unknown lane leaves events untouched");
        assert_eq!(run.events.len(), 6);
        assert!(run.filter_lane(1));
        assert!(run.events.iter().all(|e| e.worker == 1));
        assert_eq!(run.final_cost(), Some(1800.0));
        assert_eq!(run.steals(), 2);
        assert_eq!(run.lanes().len(), 1);
    }

    #[test]
    fn render_reports_milestones_and_lanes() {
        let run = RunCurve::parse("a", &sample_log()).expect("parses");
        let text = render(&[run]);
        assert!(text.contains("time to gap:"), "{text}");
        assert!(text.contains("<=5% 0.0040s"), "{text}");
        assert!(text.contains("<=1% —"), "{text}");
        assert!(text.contains("worker 0: 9 evals"), "{text}");
        assert!(text.contains("worker 1: 8 evals (100/s)"), "{text}");
        assert!(!text.contains("A/B"), "single run has no A/B table: {text}");
    }

    #[test]
    fn two_runs_render_an_ab_table() {
        let a = RunCurve::parse("base", &sample_log()).expect("parses");
        let mut faster = RunCurve::parse("cand", &sample_log()).expect("parses");
        for event in &mut faster.events {
            if let ProgressKind::IncumbentImproved { cost, .. } = &mut event.kind {
                *cost *= 0.9;
            }
        }
        let text = render(&[a, faster]);
        assert!(text.contains("A/B vs base"), "{text}");
        assert!(text.contains("(-10.00%)"), "{text}");
    }

    #[test]
    fn json_and_csv_exports_carry_the_curve() {
        let run = RunCurve::parse("a", &sample_log()).expect("parses");
        let value = json_report(std::slice::from_ref(&run));
        let runs = match value.get("runs") {
            Some(Value::Seq(v)) => v.clone(),
            other => panic!("runs array missing: {other:?}"),
        };
        assert_eq!(runs.len(), 1);
        assert!(matches!(
            runs[0].get("milestones").and_then(|m| m.get("time_to_5pct_gap_secs")),
            Some(Value::Float(t)) if (t - 0.004).abs() < 1e-12
        ));
        let text = csv(&[run]);
        assert!(text.starts_with("run,elapsed_secs,cost,gap_pct\n"), "{text}");
        assert!(text.contains("a,0.004,1500,4"), "{text}");

        // Torn tails are skipped, not fatal; garbage is an error.
        let mut torn = sample_log();
        torn.push_str("{\"t\":\"incumbent\",\"wor");
        let run = RunCurve::parse("torn", &torn).expect("parses");
        assert_eq!(run.skipped, 1);
        assert!(RunCurve::parse("bad", "not a log").is_err());
        assert!(RunCurve::parse("empty", "").expect("ok").events.is_empty());
    }
}
