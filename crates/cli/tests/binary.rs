//! End-to-end tests of the `dsd` binary itself.

use std::process::Command;

fn dsd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dsd"))
}

#[test]
fn full_workflow_through_the_binary() {
    let dir = std::env::temp_dir().join(format!("dsd-bin-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("env.toml");
    let design_path = dir.join("design.json");
    let report_path = dir.join("report.md");

    // init -> spec file
    let init = dsd().arg("init").output().expect("runs");
    assert!(init.status.success());
    std::fs::write(&spec_path, &init.stdout).unwrap();

    // design -> stdout + saved json + report
    let design = dsd()
        .args([
            "design",
            spec_path.to_str().unwrap(),
            "--budget",
            "15",
            "--seed",
            "3",
            "--save",
            design_path.to_str().unwrap(),
            "--report",
            report_path.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(design.status.success(), "{}", String::from_utf8_lossy(&design.stderr));
    let stdout = String::from_utf8_lossy(&design.stdout);
    assert!(stdout.contains("total:"));
    assert!(design_path.exists());
    let report = std::fs::read_to_string(&report_path).unwrap();
    assert!(report.contains("# Dependable storage design report"));

    // evaluate the saved design
    let eval = dsd()
        .args(["evaluate", spec_path.to_str().unwrap(), design_path.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(eval.status.success());
    assert!(String::from_utf8_lossy(&eval.stdout).contains("scenarios:"));

    // analyze a hand-written trace
    let trace_path = dir.join("trace.csv");
    std::fs::write(&trace_path, "secs,block,blocks,kind\n0.0,0,4,W\n60.0,4,4,W\n").unwrap();
    let analyze =
        dsd().args(["analyze-trace", trace_path.to_str().unwrap()]).output().expect("runs");
    assert!(analyze.status.success());
    assert!(String::from_utf8_lossy(&analyze.stdout).contains("avg update"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero_with_usage_text() {
    let out = dsd().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let missing = dsd().args(["design", "/nonexistent/spec.toml"]).output().expect("runs");
    assert!(!missing.status.success());
}

#[test]
fn tables_subcommand_prints_catalogs() {
    let out = dsd().arg("tables").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Table 1"));
    assert!(text.contains("XP1200"));
}
