//! End-to-end tests of the `dsd` binary itself.

use std::process::Command;

fn dsd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dsd"))
}

#[test]
fn full_workflow_through_the_binary() {
    let dir = std::env::temp_dir().join(format!("dsd-bin-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("env.toml");
    let design_path = dir.join("design.json");
    let report_path = dir.join("report.md");

    // init -> spec file
    let init = dsd().arg("init").output().expect("runs");
    assert!(init.status.success());
    std::fs::write(&spec_path, &init.stdout).unwrap();

    // design -> stdout + saved json + report
    let design = dsd()
        .args([
            "design",
            spec_path.to_str().unwrap(),
            "--budget",
            "15",
            "--seed",
            "3",
            "--save",
            design_path.to_str().unwrap(),
            "--report",
            report_path.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(design.status.success(), "{}", String::from_utf8_lossy(&design.stderr));
    let stdout = String::from_utf8_lossy(&design.stdout);
    assert!(stdout.contains("total:"));
    assert!(design_path.exists());
    let report = std::fs::read_to_string(&report_path).unwrap();
    assert!(report.contains("# Dependable storage design report"));

    // evaluate the saved design
    let eval = dsd()
        .args(["evaluate", spec_path.to_str().unwrap(), design_path.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(eval.status.success());
    assert!(String::from_utf8_lossy(&eval.stdout).contains("scenarios:"));

    // analyze a hand-written trace
    let trace_path = dir.join("trace.csv");
    std::fs::write(&trace_path, "secs,block,blocks,kind\n0.0,0,4,W\n60.0,4,4,W\n").unwrap();
    let analyze =
        dsd().args(["analyze-trace", trace_path.to_str().unwrap()]).output().expect("runs");
    assert!(analyze.status.success());
    assert!(String::from_utf8_lossy(&analyze.stdout).contains("avg update"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero_with_usage_text() {
    let out = dsd().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let missing = dsd().args(["design", "/nonexistent/spec.toml"]).output().expect("runs");
    assert!(!missing.status.success());
}

/// Every failure must exit nonzero AND emit a machine-readable error
/// event on stderr alongside the human-readable line.
#[test]
fn failures_emit_a_structured_error_event() {
    let out = dsd().args(["design", "/nonexistent/spec.toml"]).output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "human-readable line present");
    let event_line = stderr
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("structured event line present on stderr");
    let value = serde_json::parse(event_line).expect("event line is valid JSON");
    let str_field = |key: &str| match value.get(key) {
        Some(serde::Value::Str(s)) => s.clone(),
        other => panic!("field `{key}` missing or not a string: {other:?}"),
    };
    assert_eq!(str_field("event"), "error");
    assert!(!str_field("message").is_empty());
}

/// `--trace`/`--metrics`/`--chrome-trace` write parseable observability
/// artifacts, and `dsd obs summary` digests them.
#[test]
fn design_records_trace_and_metrics() {
    let dir = std::env::temp_dir().join(format!("dsd-obs-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("env.toml");
    let trace_path = dir.join("trace.jsonl");
    let metrics_path = dir.join("metrics.json");
    let chrome_path = dir.join("chrome.json");

    let init = dsd().arg("init").output().expect("runs");
    assert!(init.status.success());
    std::fs::write(&spec_path, &init.stdout).unwrap();

    let design = dsd()
        .args([
            "design",
            spec_path.to_str().unwrap(),
            "--budget",
            "15",
            "--seed",
            "3",
            "--trace",
            trace_path.to_str().unwrap(),
            "--metrics",
            metrics_path.to_str().unwrap(),
            "--chrome-trace",
            chrome_path.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(design.status.success(), "{}", String::from_utf8_lossy(&design.stderr));

    // The JSONL trace parses and contains the advertised event taxonomy.
    let trace_text = std::fs::read_to_string(&trace_path).unwrap();
    let parsed = dsd_obs::export::parse_jsonl(&trace_text);
    assert_eq!(parsed.skipped, 0, "clean trace: {:?}", parsed.first_error);
    let records = parsed.records;
    let has = |name: &str| records.iter().any(|r| r.name == name);
    assert!(has("greedy.place"), "greedy placements");
    assert!(has("refit.move"), "refit moves");
    assert!(has("cache.hit") || has("cache.miss"), "cache lookups");
    assert!(has("recovery.scenario"), "scenario evaluations");

    // The metrics snapshot parses and has the headline series.
    let metrics_text = std::fs::read_to_string(&metrics_path).unwrap();
    let snapshot: dsd_obs::MetricsSnapshot =
        serde_json::from_str(&metrics_text).expect("metrics parse");
    assert!(snapshot.series_count() >= 5, "got {} series", snapshot.series_count());
    assert!(snapshot.counter("solver.nodes_evaluated").unwrap_or(0) > 0);
    assert!(snapshot.histogram("solver.eval_latency").is_some());

    // The Chrome trace is one JSON array.
    let chrome_text = std::fs::read_to_string(&chrome_path).unwrap();
    let chrome = serde_json::parse(&chrome_text).expect("chrome trace parses");
    assert!(matches!(chrome, serde::Value::Seq(ref v) if !v.is_empty()));

    // The solver publishes per-move-type convergence counters and the
    // final cost gauges for downstream diffing.
    assert!(snapshot.counter("solver.trials.reassign").unwrap_or(0) > 0);
    assert!(snapshot.gauge("cost.total").is_some());

    // obs summary digests the pair, including convergence diagnostics.
    let summary = dsd()
        .args([
            "obs",
            "summary",
            trace_path.to_str().unwrap(),
            metrics_path.to_str().unwrap(),
            "--top",
            "5",
        ])
        .output()
        .expect("runs");
    assert!(summary.status.success(), "{}", String::from_utf8_lossy(&summary.stderr));
    let text = String::from_utf8_lossy(&summary.stdout);
    assert!(text.contains("top events by cumulative time"));
    assert!(text.contains("objective vs evaluations"));
    assert!(text.contains("metrics:"));
    assert!(text.contains("move acceptance rates:"));
    assert!(text.contains("delta cache:"));

    // obs profile folds the same trace into a verified span tree and
    // writes the schema-versioned JSON export.
    let profile_json_path = dir.join("profile.json");
    let profile = dsd()
        .args([
            "obs",
            "profile",
            trace_path.to_str().unwrap(),
            metrics_path.to_str().unwrap(),
            "--top",
            "5",
            "--json",
            profile_json_path.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(profile.status.success(), "{}", String::from_utf8_lossy(&profile.stderr));
    let text = String::from_utf8_lossy(&profile.stdout);
    assert!(text.contains("attributed:"), "{text}");
    assert!(text.contains("solver.solve"), "{text}");
    assert!(text.contains("contention:"), "{text}");
    let profile_value = serde_json::parse(&std::fs::read_to_string(&profile_json_path).unwrap())
        .expect("profile json parses");
    assert_eq!(profile_value.get("schema_version"), Some(&serde::Value::Int(1)));

    // obs flame renders collapsed stacks (path, space, integer µs) and
    // the path-enriched Chrome trace.
    let enriched_path = dir.join("enriched.json");
    let flame = dsd()
        .args([
            "obs",
            "flame",
            trace_path.to_str().unwrap(),
            "--chrome-trace",
            enriched_path.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(flame.status.success(), "{}", String::from_utf8_lossy(&flame.stderr));
    let collapsed = String::from_utf8_lossy(&flame.stdout);
    assert!(
        collapsed.lines().any(|l| {
            l.starts_with("solver.solve;")
                && l.rsplit(' ').next().is_some_and(|n| n.parse::<u64>().is_ok())
        }),
        "collapsed stacks malformed: {collapsed}"
    );
    assert!(std::fs::read_to_string(&enriched_path).unwrap().contains("\"path\""));

    std::fs::remove_dir_all(&dir).ok();
}

/// `dsd explain` reproduces the saved design's objective bit-for-bit
/// (it exits nonzero otherwise), and `dsd obs diff` of a run against
/// itself reports zero deltas while a doctored run trips
/// `--fail-on-regression`.
#[test]
fn explain_and_obs_diff_through_the_binary() {
    let dir = std::env::temp_dir().join(format!("dsd-explain-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("env.toml");
    let design_path = dir.join("design.json");
    let explain_path = dir.join("explain.json");

    let init = dsd().arg("init").output().expect("runs");
    assert!(init.status.success());
    std::fs::write(&spec_path, &init.stdout).unwrap();

    let design = dsd()
        .args([
            "design",
            spec_path.to_str().unwrap(),
            "--budget",
            "15",
            "--seed",
            "3",
            "--save",
            design_path.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(design.status.success(), "{}", String::from_utf8_lossy(&design.stderr));

    // explain: paper-style breakdown + machine-readable report.
    let explain = dsd()
        .args([
            "explain",
            spec_path.to_str().unwrap(),
            design_path.to_str().unwrap(),
            "--top",
            "3",
            "--json",
            explain_path.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(explain.status.success(), "{}", String::from_utf8_lossy(&explain.stderr));
    let text = String::from_utf8_lossy(&explain.stdout);
    assert!(text.contains("line items reproduce the evaluated total bit-for-bit"));
    assert!(text.contains("outlay by resource kind:"));
    assert!(text.contains("marginal cost of chosen techniques vs runner-up:"));
    // The optimality certificate is part of the human-readable output...
    assert!(text.contains("certificate:"));
    assert!(text.contains("relaxation lower bound:"));
    assert!(text.contains("optimality gap:"));
    let explain_json = std::fs::read_to_string(&explain_path).unwrap();
    let report = serde_json::parse(&explain_json).expect("explain JSON parses");
    assert!(report.get("attribution").is_some());
    assert!(report.get("marginals").is_some());
    // ...and of the machine-readable export.
    let cert = report.get("certificate").expect("certificate in explain JSON");
    assert!(cert.get("lower_bound").is_some());
    assert!(cert.get("gap_pct").is_some());
    assert!(cert.get("dominant_term").is_some());

    // Self-diff: numerically identical, zero regressions, exit 0 even
    // with --fail-on-regression.
    let diff = dsd()
        .args([
            "obs",
            "diff",
            explain_path.to_str().unwrap(),
            explain_path.to_str().unwrap(),
            "--fail-on-regression",
        ])
        .output()
        .expect("runs");
    assert!(diff.status.success(), "{}", String::from_utf8_lossy(&diff.stderr));
    let diff_text = String::from_utf8_lossy(&diff.stdout);
    assert!(diff_text.contains("runs are numerically identical: zero deltas"));
    assert!(diff_text.contains("summary: 0 regressions"));

    // A doctored run with a higher cost trips --fail-on-regression.
    let worse_path = dir.join("worse.json");
    std::fs::write(&worse_path, r#"{"gauges": {"cost.total": 200.0}}"#).unwrap();
    let base_path = dir.join("base.json");
    std::fs::write(&base_path, r#"{"gauges": {"cost.total": 100.0}}"#).unwrap();
    let regressed = dsd()
        .args([
            "obs",
            "diff",
            base_path.to_str().unwrap(),
            worse_path.to_str().unwrap(),
            "--fail-on-regression",
        ])
        .output()
        .expect("runs");
    assert!(!regressed.status.success(), "a cost regression must exit nonzero");
    assert!(String::from_utf8_lossy(&regressed.stdout).contains("REGRESSED"));

    std::fs::remove_dir_all(&dir).ok();
}

/// `dsd tournament` races the heuristics on a tiny grid, certifies the
/// `bound <= exhaustive <= heuristic` ordering (exit 0 means zero
/// violations), and writes the machine-readable report.
#[test]
fn tournament_subcommand_certifies_and_writes_json() {
    let dir = std::env::temp_dir().join(format!("dsd-tournament-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("tournament.json");

    let out = dsd()
        .args([
            "tournament",
            "--apps",
            "2",
            "--budget",
            "6",
            "--seed",
            "11",
            "--json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Tournament: 2 instances"));
    assert!(text.contains("violations: bound=0 ordering=0"));
    assert!(text.contains("heuristic gaps (vs exhaustive | vs bound)"));

    let json = std::fs::read_to_string(&json_path).unwrap();
    let report = serde_json::parse(&json).expect("tournament JSON parses");
    assert!(report.get("instances").is_some());
    assert!(report.get("summary").is_some());
    assert!(matches!(report.get("bound_violations"), Some(serde::Value::Int(0))));

    std::fs::remove_dir_all(&dir).ok();
}

/// The flight recorder end to end: a seeded `dsd design --progress-log`
/// writes a JSONL event stream whose final incumbent bit-matches the
/// published cost/gap gauges, and `dsd obs curve` digests the log into a
/// convergence report with time-to-gap milestones.
#[test]
fn progress_log_bit_matches_the_metrics_and_curves_render() {
    let dir = std::env::temp_dir().join(format!("dsd-progress-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("env.toml");
    let progress_path = dir.join("progress.jsonl");
    let metrics_path = dir.join("metrics.json");
    let report_path = dir.join("curve.json");
    let csv_path = dir.join("curve.csv");

    let init = dsd().arg("init").output().expect("runs");
    assert!(init.status.success());
    std::fs::write(&spec_path, &init.stdout).unwrap();

    let design = dsd()
        .args([
            "design",
            spec_path.to_str().unwrap(),
            "--budget",
            "15",
            "--seed",
            "3",
            "--progress",
            "--progress-log",
            progress_path.to_str().unwrap(),
            "--metrics",
            metrics_path.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(design.status.success(), "{}", String::from_utf8_lossy(&design.stderr));
    // `--progress` paints the live status line on stderr.
    let live = String::from_utf8_lossy(&design.stderr);
    assert!(live.contains("cost $"), "live status line painted: {live}");

    // The log parses cleanly and ends with a done marker.
    let log_text = std::fs::read_to_string(&progress_path).unwrap();
    let parsed = dsd_obs::progress::parse_progress_jsonl(&log_text);
    assert_eq!(parsed.skipped, 0, "clean log: {:?}", parsed.first_error);
    assert!(
        matches!(parsed.events.last().map(|e| &e.kind), Some(dsd_obs::ProgressKind::Done { .. })),
        "log ends with a done event"
    );

    // The final incumbent event bit-matches the published gauges: the
    // channel observes the same floats the solver reports.
    let (final_cost, final_gap) = parsed
        .events
        .iter()
        .rev()
        .find_map(|e| match e.kind {
            dsd_obs::ProgressKind::IncumbentImproved { cost, gap_pct, .. } => Some((cost, gap_pct)),
            _ => None,
        })
        .expect("at least one incumbent event");
    let metrics_text = std::fs::read_to_string(&metrics_path).unwrap();
    let snapshot: dsd_obs::MetricsSnapshot =
        serde_json::from_str(&metrics_text).expect("metrics parse");
    let gauge_cost = snapshot.gauge("cost.total").expect("cost.total gauge");
    assert_eq!(final_cost.to_bits(), gauge_cost.to_bits(), "incumbent cost bit-matches");
    let gauge_gap = snapshot.gauge("bound.gap_pct").expect("bound.gap_pct gauge");
    assert_eq!(
        final_gap.map(f64::to_bits),
        Some(gauge_gap.to_bits()),
        "incumbent gap bit-matches the certificate"
    );

    // `dsd obs curve` renders milestones and writes the exports.
    let curve = dsd()
        .args([
            "obs",
            "curve",
            progress_path.to_str().unwrap(),
            "--json",
            report_path.to_str().unwrap(),
            "--csv",
            csv_path.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(curve.status.success(), "{}", String::from_utf8_lossy(&curve.stderr));
    let text = String::from_utf8_lossy(&curve.stdout);
    assert!(text.contains("time to gap:"), "{text}");
    assert!(text.contains("worker lanes:"), "{text}");

    let report = serde_json::parse(&std::fs::read_to_string(&report_path).unwrap())
        .expect("curve report parses");
    assert!(report.get("runs").is_some());
    let csv = std::fs::read_to_string(&csv_path).unwrap();
    assert!(csv.starts_with("run,elapsed_secs,cost,gap_pct"), "{csv}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tables_subcommand_prints_catalogs() {
    let out = dsd().arg("tables").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Table 1"));
    assert!(text.contains("XP1200"));
}
