//! End-to-end tests of the `dsd` binary itself.

use std::process::Command;

fn dsd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dsd"))
}

#[test]
fn full_workflow_through_the_binary() {
    let dir = std::env::temp_dir().join(format!("dsd-bin-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("env.toml");
    let design_path = dir.join("design.json");
    let report_path = dir.join("report.md");

    // init -> spec file
    let init = dsd().arg("init").output().expect("runs");
    assert!(init.status.success());
    std::fs::write(&spec_path, &init.stdout).unwrap();

    // design -> stdout + saved json + report
    let design = dsd()
        .args([
            "design",
            spec_path.to_str().unwrap(),
            "--budget",
            "15",
            "--seed",
            "3",
            "--save",
            design_path.to_str().unwrap(),
            "--report",
            report_path.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(design.status.success(), "{}", String::from_utf8_lossy(&design.stderr));
    let stdout = String::from_utf8_lossy(&design.stdout);
    assert!(stdout.contains("total:"));
    assert!(design_path.exists());
    let report = std::fs::read_to_string(&report_path).unwrap();
    assert!(report.contains("# Dependable storage design report"));

    // evaluate the saved design
    let eval = dsd()
        .args(["evaluate", spec_path.to_str().unwrap(), design_path.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(eval.status.success());
    assert!(String::from_utf8_lossy(&eval.stdout).contains("scenarios:"));

    // analyze a hand-written trace
    let trace_path = dir.join("trace.csv");
    std::fs::write(&trace_path, "secs,block,blocks,kind\n0.0,0,4,W\n60.0,4,4,W\n").unwrap();
    let analyze =
        dsd().args(["analyze-trace", trace_path.to_str().unwrap()]).output().expect("runs");
    assert!(analyze.status.success());
    assert!(String::from_utf8_lossy(&analyze.stdout).contains("avg update"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero_with_usage_text() {
    let out = dsd().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let missing = dsd().args(["design", "/nonexistent/spec.toml"]).output().expect("runs");
    assert!(!missing.status.success());
}

/// Every failure must exit nonzero AND emit a machine-readable error
/// event on stderr alongside the human-readable line.
#[test]
fn failures_emit_a_structured_error_event() {
    let out = dsd().args(["design", "/nonexistent/spec.toml"]).output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "human-readable line present");
    let event_line = stderr
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("structured event line present on stderr");
    let value = serde_json::parse(event_line).expect("event line is valid JSON");
    let str_field = |key: &str| match value.get(key) {
        Some(serde::Value::Str(s)) => s.clone(),
        other => panic!("field `{key}` missing or not a string: {other:?}"),
    };
    assert_eq!(str_field("event"), "error");
    assert!(!str_field("message").is_empty());
}

/// `--trace`/`--metrics`/`--chrome-trace` write parseable observability
/// artifacts, and `dsd obs summary` digests them.
#[test]
fn design_records_trace_and_metrics() {
    let dir = std::env::temp_dir().join(format!("dsd-obs-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("env.toml");
    let trace_path = dir.join("trace.jsonl");
    let metrics_path = dir.join("metrics.json");
    let chrome_path = dir.join("chrome.json");

    let init = dsd().arg("init").output().expect("runs");
    assert!(init.status.success());
    std::fs::write(&spec_path, &init.stdout).unwrap();

    let design = dsd()
        .args([
            "design",
            spec_path.to_str().unwrap(),
            "--budget",
            "15",
            "--seed",
            "3",
            "--trace",
            trace_path.to_str().unwrap(),
            "--metrics",
            metrics_path.to_str().unwrap(),
            "--chrome-trace",
            chrome_path.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(design.status.success(), "{}", String::from_utf8_lossy(&design.stderr));

    // The JSONL trace parses and contains the advertised event taxonomy.
    let trace_text = std::fs::read_to_string(&trace_path).unwrap();
    let records = dsd_obs::export::parse_jsonl(&trace_text).expect("trace parses");
    let has = |name: &str| records.iter().any(|r| r.name == name);
    assert!(has("greedy.place"), "greedy placements");
    assert!(has("refit.move"), "refit moves");
    assert!(has("cache.hit") || has("cache.miss"), "cache lookups");
    assert!(has("recovery.scenario"), "scenario evaluations");

    // The metrics snapshot parses and has the headline series.
    let metrics_text = std::fs::read_to_string(&metrics_path).unwrap();
    let snapshot: dsd_obs::MetricsSnapshot =
        serde_json::from_str(&metrics_text).expect("metrics parse");
    assert!(snapshot.series_count() >= 5, "got {} series", snapshot.series_count());
    assert!(snapshot.counter("solver.nodes_evaluated").unwrap_or(0) > 0);
    assert!(snapshot.histogram("solver.eval_latency").is_some());

    // The Chrome trace is one JSON array.
    let chrome_text = std::fs::read_to_string(&chrome_path).unwrap();
    let chrome = serde_json::parse(&chrome_text).expect("chrome trace parses");
    assert!(matches!(chrome, serde::Value::Seq(ref v) if !v.is_empty()));

    // obs summary digests the pair.
    let summary = dsd()
        .args(["obs", "summary", trace_path.to_str().unwrap(), metrics_path.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(summary.status.success(), "{}", String::from_utf8_lossy(&summary.stderr));
    let text = String::from_utf8_lossy(&summary.stdout);
    assert!(text.contains("top events by cumulative time"));
    assert!(text.contains("objective vs evaluations"));
    assert!(text.contains("metrics:"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tables_subcommand_prints_catalogs() {
    let out = dsd().arg("tables").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Table 1"));
    assert!(text.contains("XP1200"));
}
