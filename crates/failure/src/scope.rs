//! Failure scopes: which devices and data each failure takes down.

use std::fmt;

use serde::{Deserialize, Serialize};

use dsd_resources::{ArrayRef, SiteId, TapeRef};
use dsd_workload::AppId;

/// The set of failed devices/data in one failure scenario (paper §2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureScope {
    /// Loss or corruption of one application's primary data object due to
    /// human error or software malfunction; hardware is intact. Mirrors
    /// replicate the corruption, so only point-in-time copies (snapshot,
    /// backup, vault) survive *for that application*.
    DataObject {
        /// The affected application.
        app: AppId,
    },
    /// Failure of one disk array: the primary copies and snapshots it
    /// holds are lost.
    DiskArray {
        /// The failed array.
        array: ArrayRef,
    },
    /// Disaster taking down every device at one site.
    SiteDisaster {
        /// The destroyed site.
        site: SiteId,
    },
}

impl FailureScope {
    /// True if the scope destroys the given disk array.
    #[must_use]
    pub fn fails_array(&self, r: ArrayRef) -> bool {
        match self {
            FailureScope::DataObject { .. } => false,
            FailureScope::DiskArray { array } => *array == r,
            FailureScope::SiteDisaster { site } => r.site == *site,
        }
    }

    /// True if the scope destroys the given tape library.
    #[must_use]
    pub fn fails_tape(&self, t: TapeRef) -> bool {
        matches!(self, FailureScope::SiteDisaster { site } if t.site == *site)
    }

    /// True if the scope destroys the whole site (facility, compute and
    /// all devices).
    #[must_use]
    pub fn fails_site(&self, s: SiteId) -> bool {
        matches!(self, FailureScope::SiteDisaster { site } if *site == s)
    }

    /// True if the scope logically corrupts `app`'s data stream —
    /// mirrors of that application are corrupted too and cannot be used
    /// for recovery.
    #[must_use]
    pub fn corrupts_data_of(&self, app: AppId) -> bool {
        matches!(self, FailureScope::DataObject { app: failed } if *failed == app)
    }

    /// True if an application with the given primary placement loses its
    /// primary copy under this scope (and therefore needs recovery).
    #[must_use]
    pub fn affects_app(&self, app: AppId, primary: ArrayRef) -> bool {
        self.corrupts_data_of(app) || self.fails_array(primary)
    }

    /// True if hardware must be repaired or rebuilt before data can be
    /// restored in place (array and site failures, but not logical data
    /// corruption).
    #[must_use]
    pub fn requires_hardware_repair(&self) -> bool {
        !matches!(self, FailureScope::DataObject { .. })
    }
}

impl fmt::Display for FailureScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureScope::DataObject { app } => write!(f, "data object failure of {app}"),
            FailureScope::DiskArray { array } => write!(f, "disk array failure of {array}"),
            FailureScope::SiteDisaster { site } => write!(f, "site disaster at {site}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A00: ArrayRef = ArrayRef { site: SiteId(0), slot: 0 };
    const A01: ArrayRef = ArrayRef { site: SiteId(0), slot: 1 };
    const A10: ArrayRef = ArrayRef { site: SiteId(1), slot: 0 };

    #[test]
    fn data_object_fails_no_hardware() {
        let s = FailureScope::DataObject { app: AppId(2) };
        assert!(!s.fails_array(A00));
        assert!(!s.fails_tape(TapeRef::first(SiteId(0))));
        assert!(!s.fails_site(SiteId(0)));
        assert!(!s.requires_hardware_repair());
    }

    #[test]
    fn data_object_corrupts_only_its_app() {
        let s = FailureScope::DataObject { app: AppId(2) };
        assert!(s.corrupts_data_of(AppId(2)));
        assert!(!s.corrupts_data_of(AppId(3)));
        assert!(s.affects_app(AppId(2), A00));
        assert!(!s.affects_app(AppId(3), A00));
    }

    #[test]
    fn array_failure_is_array_scoped() {
        let s = FailureScope::DiskArray { array: A00 };
        assert!(s.fails_array(A00));
        assert!(!s.fails_array(A01), "other slot at same site survives");
        assert!(!s.fails_array(A10));
        assert!(!s.fails_tape(TapeRef::first(SiteId(0))), "tape library is separate hardware");
        assert!(!s.fails_site(SiteId(0)));
        assert!(s.requires_hardware_repair());
        assert!(s.affects_app(AppId(0), A00));
        assert!(!s.affects_app(AppId(0), A01));
    }

    #[test]
    fn site_disaster_takes_everything_at_site() {
        let s = FailureScope::SiteDisaster { site: SiteId(0) };
        assert!(s.fails_array(A00));
        assert!(s.fails_array(A01));
        assert!(!s.fails_array(A10));
        assert!(s.fails_tape(TapeRef::first(SiteId(0))));
        assert!(!s.fails_tape(TapeRef::first(SiteId(1))));
        assert!(s.fails_site(SiteId(0)));
        assert!(!s.corrupts_data_of(AppId(0)), "disasters destroy, they don't corrupt streams");
    }

    #[test]
    fn display_names_the_scope() {
        assert_eq!(
            FailureScope::DataObject { app: AppId(1) }.to_string(),
            "data object failure of app#1"
        );
        assert!(FailureScope::SiteDisaster { site: SiteId(0) }.to_string().contains("site#0"));
    }
}
