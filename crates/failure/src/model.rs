//! Failure rates and scenario enumeration.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use dsd_resources::ArrayRef;
use dsd_units::PerYear;
use dsd_workload::AppId;

use crate::scope::FailureScope;

/// Annualized failure likelihoods for the three scope kinds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureRates {
    /// Data object failure rate, per application.
    pub data_object: PerYear,
    /// Disk array failure rate, per array.
    pub disk_array: PerYear,
    /// Site disaster rate, per site.
    pub site_disaster: PerYear,
}

impl FailureRates {
    /// The case-study rates (paper §4.2): data object and disk array
    /// failures once in three years, site disasters once in five years.
    #[must_use]
    pub fn case_study() -> Self {
        FailureRates {
            data_object: PerYear::once_every_years(3.0),
            disk_array: PerYear::once_every_years(3.0),
            site_disaster: PerYear::once_every_years(5.0),
        }
    }

    /// The sensitivity-study baseline (paper §4.5): data object failures
    /// twice a year, disk failures once in five years, site disasters
    /// once in twenty years.
    #[must_use]
    pub fn sensitivity_baseline() -> Self {
        FailureRates {
            data_object: PerYear::new(2.0),
            disk_array: PerYear::once_every_years(5.0),
            site_disaster: PerYear::once_every_years(20.0),
        }
    }

    /// Copy with a different data-object rate (builder style, for the
    /// Figure 5 sweep).
    #[must_use]
    pub fn with_data_object(mut self, rate: PerYear) -> Self {
        self.data_object = rate;
        self
    }

    /// Copy with a different disk-array rate (Figure 6 sweep).
    #[must_use]
    pub fn with_disk_array(mut self, rate: PerYear) -> Self {
        self.disk_array = rate;
        self
    }

    /// Copy with a different site-disaster rate (Figure 7 sweep).
    #[must_use]
    pub fn with_site_disaster(mut self, rate: PerYear) -> Self {
        self.site_disaster = rate;
        self
    }
}

impl fmt::Display for FailureRates {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "object {}, array {}, site {}",
            self.data_object, self.disk_array, self.site_disaster
        )
    }
}

/// One concrete failure scenario: a scope plus its annual likelihood.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureScenario {
    /// What fails.
    pub scope: FailureScope,
    /// Expected occurrences per year.
    pub likelihood: PerYear,
}

impl fmt::Display for FailureScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.scope, self.likelihood)
    }
}

/// Enumerates the failure scenarios relevant to a design (paper §2.4–2.5:
/// penalties are summed over all failure scenarios, weighted by
/// likelihood).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    rates: FailureRates,
}

impl FailureModel {
    /// Creates a model with the given rates.
    #[must_use]
    pub fn new(rates: FailureRates) -> Self {
        FailureModel { rates }
    }

    /// The configured rates.
    #[must_use]
    pub fn rates(&self) -> FailureRates {
        self.rates
    }

    /// Enumerates scenarios for a design given each application's primary
    /// placement:
    ///
    /// * one [`FailureScope::DataObject`] per application,
    /// * one [`FailureScope::DiskArray`] per distinct primary-hosting
    ///   array,
    /// * one [`FailureScope::SiteDisaster`] per distinct primary-hosting
    ///   site.
    ///
    /// Scenarios whose configured rate is [`PerYear::NEVER`] are skipped.
    #[must_use]
    pub fn enumerate(
        &self,
        primaries: impl IntoIterator<Item = (AppId, ArrayRef)>,
    ) -> Vec<FailureScenario> {
        let mut apps = Vec::new();
        let mut arrays = BTreeSet::new();
        let mut sites = BTreeSet::new();
        for (app, primary) in primaries {
            apps.push(app);
            arrays.insert(primary);
            sites.insert(primary.site);
        }

        let mut out = Vec::new();
        if !self.rates.data_object.is_never() {
            out.extend(apps.into_iter().map(|app| FailureScenario {
                scope: FailureScope::DataObject { app },
                likelihood: self.rates.data_object,
            }));
        }
        if !self.rates.disk_array.is_never() {
            out.extend(arrays.into_iter().map(|array| FailureScenario {
                scope: FailureScope::DiskArray { array },
                likelihood: self.rates.disk_array,
            }));
        }
        if !self.rates.site_disaster.is_never() {
            out.extend(sites.into_iter().map(|site| FailureScenario {
                scope: FailureScope::SiteDisaster { site },
                likelihood: self.rates.site_disaster,
            }));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_resources::SiteId;

    fn placements() -> Vec<(AppId, ArrayRef)> {
        vec![
            (AppId(0), ArrayRef { site: SiteId(0), slot: 0 }),
            (AppId(1), ArrayRef { site: SiteId(0), slot: 0 }),
            (AppId(2), ArrayRef { site: SiteId(0), slot: 1 }),
            (AppId(3), ArrayRef { site: SiteId(1), slot: 0 }),
        ]
    }

    #[test]
    fn enumeration_counts_scopes_correctly() {
        let model = FailureModel::new(FailureRates::case_study());
        let scenarios = model.enumerate(placements());
        let objects =
            scenarios.iter().filter(|s| matches!(s.scope, FailureScope::DataObject { .. })).count();
        let arrays =
            scenarios.iter().filter(|s| matches!(s.scope, FailureScope::DiskArray { .. })).count();
        let sites = scenarios
            .iter()
            .filter(|s| matches!(s.scope, FailureScope::SiteDisaster { .. }))
            .count();
        assert_eq!((objects, arrays, sites), (4, 3, 2));
    }

    #[test]
    fn likelihoods_match_rates() {
        let rates = FailureRates::case_study();
        let model = FailureModel::new(rates);
        for s in model.enumerate(placements()) {
            let expected = match s.scope {
                FailureScope::DataObject { .. } => rates.data_object,
                FailureScope::DiskArray { .. } => rates.disk_array,
                FailureScope::SiteDisaster { .. } => rates.site_disaster,
            };
            assert_eq!(s.likelihood, expected);
        }
    }

    #[test]
    fn never_rates_drop_scenarios() {
        let rates = FailureRates::case_study()
            .with_disk_array(PerYear::NEVER)
            .with_site_disaster(PerYear::NEVER);
        let scenarios = FailureModel::new(rates).enumerate(placements());
        assert_eq!(scenarios.len(), 4, "only the per-app data object scenarios remain");
    }

    #[test]
    fn empty_design_has_no_scenarios() {
        let model = FailureModel::new(FailureRates::case_study());
        assert!(model.enumerate(Vec::new()).is_empty());
    }

    #[test]
    fn paper_rate_presets() {
        let cs = FailureRates::case_study();
        assert_eq!(cs.data_object.mean_interval_years(), Some(3.0));
        assert_eq!(cs.disk_array.mean_interval_years(), Some(3.0));
        assert_eq!(cs.site_disaster.mean_interval_years(), Some(5.0));
        let sb = FailureRates::sensitivity_baseline();
        assert_eq!(sb.data_object.as_f64(), 2.0);
        assert_eq!(sb.disk_array.mean_interval_years(), Some(5.0));
        assert_eq!(sb.site_disaster.mean_interval_years(), Some(20.0));
    }

    #[test]
    fn builders_replace_single_rate() {
        let r = FailureRates::case_study().with_data_object(PerYear::new(4.0));
        assert_eq!(r.data_object.as_f64(), 4.0);
        assert_eq!(r.disk_array, FailureRates::case_study().disk_array);
    }

    #[test]
    fn display_mentions_all_rates() {
        let text = FailureRates::case_study().to_string();
        assert!(text.contains("object") && text.contains("array") && text.contains("site"));
        let s = FailureScenario {
            scope: FailureScope::DataObject { app: AppId(0) },
            likelihood: PerYear::new(2.0),
        };
        assert!(s.to_string().contains("2.0/yr"));
    }
}
