#![warn(missing_docs)]

//! Failure model: scopes, scenarios and annual likelihoods (paper §2.4).
//!
//! A failure scenario is described by its *failure scope* — the set of
//! failed storage and interconnect devices — and an annualized *likelihood
//! of occurrence*. The paper's three scopes are:
//!
//! * **data object failure** — loss or corruption of one application's
//!   data due to human or software error, with no hardware failure;
//! * **disk array failure** — loss of one disk array and everything on it;
//! * **site disaster** — loss of every device at one site.
//!
//! [`FailureScope`] encodes which devices each scope takes down, and
//! [`FailureModel`] enumerates the concrete [`FailureScenario`]s for a
//! design (one data-object scenario per application, one array scenario
//! per primary-hosting array, one disaster per primary-hosting site),
//! each weighted with the configured [`FailureRates`].
//!
//! # Examples
//!
//! ```
//! use dsd_failure::{FailureModel, FailureRates, FailureScope};
//! use dsd_resources::{ArrayRef, SiteId};
//! use dsd_workload::AppId;
//!
//! let model = FailureModel::new(FailureRates::case_study());
//! let primary = ArrayRef { site: SiteId(0), slot: 0 };
//! let scenarios = model.enumerate([(AppId(0), primary)]);
//! assert_eq!(scenarios.len(), 3); // object + array + site
//! assert!(scenarios.iter().any(|s| matches!(s.scope, FailureScope::SiteDisaster { .. })));
//! ```

mod model;
mod scope;

pub use model::{FailureModel, FailureRates, FailureScenario};
pub use scope::FailureScope;
