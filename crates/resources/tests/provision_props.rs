//! Stateful property tests: random allocate/remove sequences must keep
//! every `Provision` invariant.

use std::sync::Arc;

use proptest::prelude::*;

use dsd_resources::{
    ArrayRef, DeviceRef, DeviceSpec, NetworkSpec, Provision, Site, SiteId, TapeRef, Topology,
};
use dsd_units::{Dollars, Gigabytes, MegabytesPerSec};
use dsd_workload::AppId;

fn topology() -> Arc<Topology> {
    let mk = |i: usize| {
        Site::new(i, format!("S{i}"))
            .with_array_slot(DeviceSpec::xp1200())
            .with_array_slot(DeviceSpec::msa1500())
            .with_tape_library(DeviceSpec::tape_library_med())
            .with_compute(8)
    };
    Arc::new(Topology::fully_connected(vec![mk(0), mk(1), mk(2)], NetworkSpec::med()))
}

/// One randomized operation against the provision.
#[derive(Debug, Clone)]
enum Op {
    AllocArray { app: u8, site: u8, slot: u8, cap: f64, bw: f64 },
    AllocTape { app: u8, site: u8, cap: f64, bw: f64 },
    AllocNetwork { app: u8, a: u8, b: u8, bw: f64 },
    AllocCompute { app: u8, site: u8 },
    RemoveApp { app: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 0u8..3, 0u8..2, 0.0..2000.0f64, 0.0..60.0f64)
            .prop_map(|(app, site, slot, cap, bw)| Op::AllocArray { app, site, slot, cap, bw }),
        (0u8..6, 0u8..3, 0.0..3000.0f64, 0.0..200.0f64)
            .prop_map(|(app, site, cap, bw)| Op::AllocTape { app, site, cap, bw }),
        (0u8..6, 0u8..3, 0u8..3, 0.0..80.0f64).prop_map(|(app, a, b, bw)| Op::AllocNetwork {
            app,
            a,
            b,
            bw
        }),
        (0u8..6, 0u8..3).prop_map(|(app, site)| Op::AllocCompute { app, site }),
        (0u8..6).prop_map(|app| Op::RemoveApp { app }),
    ]
}

/// Every invariant that must hold after *any* operation sequence.
fn check_invariants(p: &Provision, topo: &Topology) {
    for site in topo.sites() {
        for slot in 0..site.array_slots.len() {
            let r = ArrayRef { site: site.id, slot };
            if let Some(state) = p.array(r) {
                let spec = &site.array_slots[slot];
                // Units are the minimum covering the allocations.
                let (min_units, _) = spec
                    .units_for(state.alloc_capacity, state.alloc_bandwidth)
                    .expect("existing allocations always fit");
                assert_eq!(state.capacity_units, min_units, "units minimal at {r}");
                assert!(state.capacity_units + state.extra_units <= spec.max_capacity_units);
                // An instantiated array carries a real allocation.
                assert!(
                    !(state.alloc_capacity.is_zero() && state.alloc_bandwidth.is_zero()),
                    "zombie instance at {r}"
                );
                // Spare bandwidth is total minus allocated, never negative.
                let d = DeviceRef::Array(r);
                let spare = p.spare_bandwidth(d).as_f64();
                assert!(spare >= -1e-9);
                assert!(
                    (p.device_bandwidth(d).as_f64() - p.device_alloc_bandwidth(d).as_f64() - spare)
                        .abs()
                        < 1e-9
                );
            }
        }
        for slot in 0..site.tape_slots.len() {
            let r = TapeRef { site: site.id, slot };
            if let Some(state) = p.tape(r) {
                let spec = &site.tape_slots[slot];
                let (carts, drives) = spec
                    .units_for(state.alloc_capacity, state.alloc_bandwidth)
                    .expect("existing allocations always fit");
                assert_eq!((state.cartridges, state.drives), (carts, drives));
            }
        }
        assert!(p.compute(site.id).used <= site.max_compute);
    }
    for rid in topo.route_ids() {
        let state = p.link(rid);
        let spec = &topo.route(rid).network;
        assert!(state.links + state.extra_links <= spec.max_links);
        assert!(spec.bandwidth(state.links) >= state.alloc_bandwidth);
    }
    assert!(p.purchase_outlay() >= Dollars::ZERO);
    assert!(p.annual_outlay() <= p.purchase_outlay());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_sequences_preserve_invariants(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let topo = topology();
        let mut p = Provision::new(topo.clone());
        for op in ops {
            match op {
                Op::AllocArray { app, site, slot, cap, bw } => {
                    let r = ArrayRef { site: SiteId(site as usize), slot: slot as usize };
                    let _ = p.alloc_array(
                        AppId(app as usize),
                        r,
                        Gigabytes::new(cap),
                        MegabytesPerSec::new(bw),
                    );
                }
                Op::AllocTape { app, site, cap, bw } => {
                    let r = TapeRef::first(SiteId(site as usize));
                    let _ = p.alloc_tape(
                        AppId(app as usize),
                        r,
                        Gigabytes::new(cap),
                        MegabytesPerSec::new(bw),
                    );
                }
                Op::AllocNetwork { app, a, b, bw } => {
                    if a != b {
                        let _ = p.alloc_network(
                            AppId(app as usize),
                            SiteId(a as usize),
                            SiteId(b as usize),
                            MegabytesPerSec::new(bw),
                        );
                    }
                }
                Op::AllocCompute { app, site } => {
                    let _ = p.alloc_compute(AppId(app as usize), SiteId(site as usize), 1);
                }
                Op::RemoveApp { app } => p.remove_app(AppId(app as usize)),
            }
            check_invariants(&p, &topo);
        }

        // Draining every application returns the provision to empty.
        for app in 0..6u8 {
            p.remove_app(AppId(app as usize));
        }
        check_invariants(&p, &topo);
        prop_assert_eq!(p.purchase_outlay(), Dollars::ZERO);
        prop_assert_eq!(p.allocated_apps().count(), 0);
    }

    #[test]
    fn outlay_is_monotone_in_allocations(
        caps in prop::collection::vec((0.0..1000.0f64, 0.0..30.0f64), 1..10)
    ) {
        let topo = topology();
        let mut p = Provision::new(topo);
        let mut last = Dollars::ZERO;
        for (i, (cap, bw)) in caps.into_iter().enumerate() {
            let r = ArrayRef { site: SiteId(0), slot: 0 };
            if p.alloc_array(AppId(i), r, Gigabytes::new(cap), MegabytesPerSec::new(bw)).is_ok() {
                let now = p.purchase_outlay();
                prop_assert!(now >= last, "outlay must not shrink on allocation");
                last = now;
            }
        }
    }
}
