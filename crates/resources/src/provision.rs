//! Provisioned resource state of a candidate design.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dsd_units::{Dollars, Gigabytes, MegabytesPerSec};
use dsd_workload::AppId;

use crate::error::ResourceError;
use crate::spec::DeviceSpec;
use crate::topology::{RouteId, SiteId, Topology};

/// Reference to a disk array slot (and hence at most one array instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ArrayRef {
    /// Hosting site.
    pub site: SiteId,
    /// Array slot index within the site.
    pub slot: usize,
}

impl fmt::Display for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "array@{}/{}", self.site, self.slot)
    }
}

/// Reference to a tape library slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TapeRef {
    /// Hosting site.
    pub site: SiteId,
    /// Tape slot index within the site.
    pub slot: usize,
}

impl TapeRef {
    /// The first (usually only) tape library of a site.
    #[must_use]
    pub fn first(site: SiteId) -> Self {
        TapeRef { site, slot: 0 }
    }
}

impl fmt::Display for TapeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tape@{}/{}", self.site, self.slot)
    }
}

/// Resource category of one purchase-outlay line item (paper §2.5 cost
/// model: device outlays plus facility costs of used sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OutlayKind {
    /// A provisioned disk array.
    DiskArray,
    /// A provisioned tape library (drives + cartridges).
    TapeLibrary,
    /// Spare compute servers at a site.
    SpareCompute,
    /// Facility cost of a site that hosts at least one device.
    Facility,
    /// Provisioned links on an inter-site route.
    NetworkLink,
}

impl OutlayKind {
    /// Human-readable category name for report tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            OutlayKind::DiskArray => "disk arrays",
            OutlayKind::TapeLibrary => "tape libraries",
            OutlayKind::SpareCompute => "spare compute",
            OutlayKind::Facility => "facilities",
            OutlayKind::NetworkLink => "network links",
        }
    }
}

impl fmt::Display for OutlayKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One line of the itemized purchase outlay: a single device, compute
/// pool, facility or route, with its unamortized purchase price.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutlayItem {
    /// Resource category the item belongs to.
    pub kind: OutlayKind,
    /// Human-readable identity, e.g. `array@site0/0 (Midrange array)`.
    pub label: String,
    /// Unamortized purchase price of this item.
    pub purchase: Dollars,
}

/// Identity of any bandwidth-bearing device, used by the recovery
/// scheduler to detect contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DeviceRef {
    /// A disk array.
    Array(ArrayRef),
    /// A tape library.
    Tape(TapeRef),
    /// An inter-site link bundle.
    Route(RouteId),
}

impl fmt::Display for DeviceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceRef::Array(a) => a.fmt(f),
            DeviceRef::Tape(t) => t.fmt(f),
            DeviceRef::Route(r) => r.fmt(f),
        }
    }
}

/// State of one instantiated disk array.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ArrayState {
    /// Disks required by current allocations (recomputed on each change).
    pub capacity_units: u32,
    /// Additional disks deliberately provisioned beyond the minimum (the
    /// configuration solver's resource-addition loop, paper §3.2.2).
    pub extra_units: u32,
    /// Capacity allocated by applications.
    pub alloc_capacity: Gigabytes,
    /// Bandwidth allocated by applications (normal operation).
    pub alloc_bandwidth: MegabytesPerSec,
}

/// State of one instantiated tape library.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TapeState {
    /// Cartridges required by current allocations.
    pub cartridges: u32,
    /// Drives required by current allocations.
    pub drives: u32,
    /// Extra drives beyond the minimum.
    pub extra_drives: u32,
    /// Capacity allocated.
    pub alloc_capacity: Gigabytes,
    /// Drive bandwidth allocated.
    pub alloc_bandwidth: MegabytesPerSec,
}

/// State of one route's provisioned link bundle.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkState {
    /// Links required by current allocations.
    pub links: u32,
    /// Extra links beyond the minimum.
    pub extra_links: u32,
    /// Bandwidth allocated.
    pub alloc_bandwidth: MegabytesPerSec,
}

/// Compute state of one site.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ComputeState {
    /// Servers running applications (one per primary allocation).
    pub used: u32,
    /// Failover-spare demand: number of applications that fail over to
    /// this site.
    pub spare_demand: u32,
    /// Spare servers actually provisioned: `ceil(ratio × spare_demand)`
    /// under the sparing ratio in force (1.0 = a dedicated spare per
    /// application, the paper's implicit model; lower ratios share
    /// spares N+M style).
    pub spare_allocated: u32,
}

impl ComputeState {
    /// Total servers charged for at this site.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.used + self.spare_allocated
    }
}

/// Per-application allocation ledger, kept so an application can be
/// removed wholesale during reconfiguration (paper §3.1.3).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
struct AppLedger {
    arrays: Vec<(ArrayRef, Gigabytes, MegabytesPerSec)>,
    tapes: Vec<(TapeRef, Gigabytes, MegabytesPerSec)>,
    routes: Vec<(RouteId, MegabytesPerSec)>,
    compute: Vec<(SiteId, u32)>,
    /// Failover-spare memberships: (site, sparing ratio in force when
    /// the spare was demanded).
    spares: Vec<(SiteId, f64)>,
}

/// An exact-state snapshot of the provision slice one trial move may
/// touch, taken by [`Provision::checkpoint`] and written back verbatim by
/// [`Provision::restore`].
///
/// Floating-point allocation arithmetic is not reversible (`(a + b) - b`
/// need not equal `a`), so undoing a trial move by subtracting what it
/// added would drift the provision away from the state a fresh
/// construction produces. Snapshotting the touched device states and the
/// application's ledger instead makes apply → undo restore the prior
/// state *bit for bit* — the foundation of the incremental solver loop's
/// oracle-equivalence guarantee.
#[derive(Debug, Clone)]
pub struct ProvisionCheckpoint {
    arrays: Vec<(usize, Option<ArrayState>)>,
    tapes: Vec<(usize, Option<TapeState>)>,
    links: Vec<(usize, LinkState)>,
    compute: Vec<(usize, ComputeState)>,
    ledger: Option<(AppId, Option<AppLedger>)>,
}

/// The devices and sites an application's allocations currently touch,
/// derived from its ledger — the exact set a removal will mutate.
#[derive(Debug, Clone, Default)]
pub struct AppFootprint {
    /// Arrays carrying allocations of the application.
    pub arrays: Vec<ArrayRef>,
    /// Tape libraries carrying allocations of the application.
    pub tapes: Vec<TapeRef>,
    /// Routes carrying allocations of the application.
    pub routes: Vec<RouteId>,
    /// Sites where the application holds compute servers or
    /// failover-spare memberships.
    pub sites: Vec<SiteId>,
}

/// The provisioned infrastructure of one candidate design: device
/// instances, link bundles, compute servers, and per-application
/// allocations, with validate-then-commit mutation and amortized annual
/// outlay accounting (paper §2.3, §2.5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Provision {
    #[serde(skip, default = "empty_topology")]
    topology: Arc<Topology>,
    arrays: Vec<Option<ArrayState>>,
    tapes: Vec<Option<TapeState>>,
    links: Vec<LinkState>,
    compute: Vec<ComputeState>,
    ledgers: BTreeMap<AppId, AppLedger>,
    tape_slot_base: Vec<usize>,
}

/// Spare servers needed for `demand` failover members at sparing
/// `ratio`: `ceil(ratio × demand)`, zero only when demand is zero.
fn spare_pool_size(demand: u32, ratio: f64) -> u32 {
    if demand == 0 {
        return 0;
    }
    (f64::from(demand) * ratio).ceil().max(1.0) as u32
}

fn empty_topology() -> Arc<Topology> {
    Arc::new(Topology::new(Vec::new(), Vec::new()))
}

impl PartialEq for Provision {
    fn eq(&self, other: &Self) -> bool {
        self.arrays == other.arrays
            && self.tapes == other.tapes
            && self.links == other.links
            && self.compute == other.compute
            && self.ledgers == other.ledgers
    }
}

impl Provision {
    /// Creates an empty provision over `topology`.
    #[must_use]
    pub fn new(topology: Arc<Topology>) -> Self {
        let mut tape_slot_base = Vec::with_capacity(topology.site_count());
        let mut acc = 0;
        for s in topology.sites() {
            tape_slot_base.push(acc);
            acc += s.tape_slots.len();
        }
        Provision {
            arrays: vec![None; topology.total_array_slots()],
            tapes: vec![None; acc],
            links: vec![LinkState::default(); topology.route_count()],
            compute: vec![ComputeState::default(); topology.site_count()],
            ledgers: BTreeMap::new(),
            tape_slot_base,
            topology,
        }
    }

    /// The topology this provision is defined over.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Shared handle to the topology.
    #[must_use]
    pub fn topology_arc(&self) -> Arc<Topology> {
        Arc::clone(&self.topology)
    }

    fn array_spec(&self, r: ArrayRef) -> Result<&DeviceSpec, ResourceError> {
        self.topology
            .site(r.site)
            .array_slots
            .get(r.slot)
            .ok_or(ResourceError::NoSuchArraySlot { site: r.site, slot: r.slot })
    }

    fn tape_spec(&self, r: TapeRef) -> Result<&DeviceSpec, ResourceError> {
        self.topology
            .site(r.site)
            .tape_slots
            .get(r.slot)
            .ok_or(ResourceError::NoSuchTapeSlot { site: r.site, slot: r.slot })
    }

    fn array_index(&self, r: ArrayRef) -> usize {
        self.topology.array_slot_index(r.site, r.slot)
    }

    fn tape_index(&self, r: TapeRef) -> usize {
        self.tape_slot_base[r.site.0] + r.slot
    }

    /// The state of an array instance, if provisioned.
    #[must_use]
    pub fn array(&self, r: ArrayRef) -> Option<&ArrayState> {
        self.arrays.get(self.array_index(r)).and_then(Option::as_ref)
    }

    /// The state of a tape library instance, if provisioned.
    #[must_use]
    pub fn tape(&self, r: TapeRef) -> Option<&TapeState> {
        self.tapes.get(self.tape_index(r)).and_then(Option::as_ref)
    }

    /// The link state of a route.
    #[must_use]
    pub fn link(&self, r: RouteId) -> &LinkState {
        &self.links[r.0]
    }

    /// The compute state of a site.
    #[must_use]
    pub fn compute(&self, s: SiteId) -> &ComputeState {
        &self.compute[s.0]
    }

    /// Allocates `capacity`/`bandwidth` on the array in slot `r` for
    /// `app`, instantiating the array and growing its disk count as
    /// needed.
    ///
    /// # Errors
    ///
    /// [`ResourceError::NoSuchArraySlot`] if the slot does not exist;
    /// [`ResourceError::DeviceExhausted`] if the combined allocations
    /// would exceed the device's capacity or enclosure bandwidth. The
    /// provision is unchanged on error.
    pub fn alloc_array(
        &mut self,
        app: AppId,
        r: ArrayRef,
        capacity: Gigabytes,
        bandwidth: MegabytesPerSec,
    ) -> Result<(), ResourceError> {
        let spec = self.array_spec(r)?.clone();
        let idx = self.array_index(r);
        let state = self.arrays[idx].clone().unwrap_or_default();
        let new_cap = state.alloc_capacity + capacity;
        let new_bw = state.alloc_bandwidth + bandwidth;
        let (units, _) = spec
            .units_for(new_cap, new_bw)
            .ok_or_else(|| ResourceError::DeviceExhausted { device: format!("{spec} @ {r}") })?;
        self.arrays[idx] = Some(ArrayState {
            capacity_units: units,
            extra_units: state.extra_units,
            alloc_capacity: new_cap,
            alloc_bandwidth: new_bw,
        });
        self.ledgers.entry(app).or_default().arrays.push((r, capacity, bandwidth));
        Ok(())
    }

    /// Allocates cartridge capacity and drive bandwidth on the tape
    /// library in slot `r` for `app`.
    ///
    /// # Errors
    ///
    /// [`ResourceError::NoSuchTapeSlot`] or
    /// [`ResourceError::DeviceExhausted`]; unchanged on error.
    pub fn alloc_tape(
        &mut self,
        app: AppId,
        r: TapeRef,
        capacity: Gigabytes,
        bandwidth: MegabytesPerSec,
    ) -> Result<(), ResourceError> {
        let spec = self.tape_spec(r)?.clone();
        let idx = self.tape_index(r);
        let state = self.tapes[idx].clone().unwrap_or_default();
        let new_cap = state.alloc_capacity + capacity;
        let new_bw = state.alloc_bandwidth + bandwidth;
        let (cartridges, drives) = spec
            .units_for(new_cap, new_bw)
            .ok_or_else(|| ResourceError::DeviceExhausted { device: format!("{spec} @ {r}") })?;
        self.tapes[idx] = Some(TapeState {
            cartridges,
            drives,
            extra_drives: state.extra_drives,
            alloc_capacity: new_cap,
            alloc_bandwidth: new_bw,
        });
        self.ledgers.entry(app).or_default().tapes.push((r, capacity, bandwidth));
        Ok(())
    }

    /// Allocates `bandwidth` on the route between `a` and `b` for `app`,
    /// growing the link bundle as needed.
    ///
    /// # Errors
    ///
    /// [`ResourceError::NoRoute`] if the sites are not connected;
    /// [`ResourceError::RouteExhausted`] if the route cannot carry the
    /// combined bandwidth. Unchanged on error.
    pub fn alloc_network(
        &mut self,
        app: AppId,
        a: SiteId,
        b: SiteId,
        bandwidth: MegabytesPerSec,
    ) -> Result<RouteId, ResourceError> {
        let route = self.topology.route_between(a, b).ok_or(ResourceError::NoRoute { a, b })?;
        let spec = self.topology.route(route).network.clone();
        let state = &self.links[route.0];
        let new_bw = state.alloc_bandwidth + bandwidth;
        let links = spec.links_for(new_bw).ok_or(ResourceError::RouteExhausted { route })?;
        let state = &mut self.links[route.0];
        state.links = links;
        state.alloc_bandwidth = new_bw;
        self.ledgers.entry(app).or_default().routes.push((route, bandwidth));
        Ok(route)
    }

    /// Reserves `servers` compute servers at `site` for `app`.
    ///
    /// # Errors
    ///
    /// [`ResourceError::ComputeExhausted`] if the site limit would be
    /// exceeded. Unchanged on error.
    pub fn alloc_compute(
        &mut self,
        app: AppId,
        site: SiteId,
        servers: u32,
    ) -> Result<(), ResourceError> {
        let max = self.topology.site(site).max_compute;
        let state = &self.compute[site.0];
        if state.total() + servers > max {
            return Err(ResourceError::ComputeExhausted { site });
        }
        self.compute[site.0].used += servers;
        self.ledgers.entry(app).or_default().compute.push((site, servers));
        Ok(())
    }

    /// Joins `app` to the failover-spare pool at `site`. The pool holds
    /// `ceil(ratio × demand)` servers (at least one while any demand
    /// exists); with `ratio = 1.0` every application gets a dedicated
    /// spare, lower ratios share spares N+M style.
    ///
    /// # Errors
    ///
    /// [`ResourceError::ComputeExhausted`] if growing the pool would
    /// exceed the site limit. Unchanged on error.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is outside `(0, 1]`.
    pub fn alloc_failover_spare(
        &mut self,
        app: AppId,
        site: SiteId,
        ratio: f64,
    ) -> Result<(), ResourceError> {
        assert!(ratio > 0.0 && ratio <= 1.0, "sparing ratio must be in (0,1]: {ratio}");
        let max = self.topology.site(site).max_compute;
        let state = &self.compute[site.0];
        let new_demand = state.spare_demand + 1;
        let new_alloc = spare_pool_size(new_demand, ratio);
        if state.used + new_alloc > max {
            // used + the *new* pool size; the old pool is being replaced.
            return Err(ResourceError::ComputeExhausted { site });
        }
        let state = &mut self.compute[site.0];
        state.spare_demand = new_demand;
        state.spare_allocated = new_alloc;
        self.ledgers.entry(app).or_default().spares.push((site, ratio));
        Ok(())
    }

    /// Removes every allocation made by `app` (reconfiguration, paper
    /// §3.1.3), shrinking device unit counts to the minimum required by
    /// the remaining allocations. Extra (deliberately over-provisioned)
    /// units are preserved on devices that remain instantiated; devices
    /// with no remaining allocation are de-instantiated entirely.
    pub fn remove_app(&mut self, app: AppId) {
        let Some(ledger) = self.ledgers.remove(&app) else {
            return;
        };
        for (r, cap, bw) in ledger.arrays {
            let idx = self.array_index(r);
            let spec = self.array_spec(r).expect("ledger refers to valid slot").clone();
            let state = self.arrays[idx].as_mut().expect("allocated array exists");
            state.alloc_capacity -= cap;
            state.alloc_bandwidth -= bw;
            if state.alloc_capacity.is_zero() && state.alloc_bandwidth.is_zero() {
                self.arrays[idx] = None;
            } else {
                let (units, _) = spec
                    .units_for(state.alloc_capacity, state.alloc_bandwidth)
                    .expect("shrinking allocation always fits");
                state.capacity_units = units;
            }
        }
        for (r, cap, bw) in ledger.tapes {
            let idx = self.tape_index(r);
            let spec = self.tape_spec(r).expect("ledger refers to valid slot").clone();
            let state = self.tapes[idx].as_mut().expect("allocated tape exists");
            state.alloc_capacity -= cap;
            state.alloc_bandwidth -= bw;
            if state.alloc_capacity.is_zero() && state.alloc_bandwidth.is_zero() {
                self.tapes[idx] = None;
            } else {
                let (cartridges, drives) = spec
                    .units_for(state.alloc_capacity, state.alloc_bandwidth)
                    .expect("shrinking allocation always fits");
                state.cartridges = cartridges;
                state.drives = drives;
            }
        }
        for (route, bw) in ledger.routes {
            let spec = self.topology.route(route).network.clone();
            let state = &mut self.links[route.0];
            state.alloc_bandwidth -= bw;
            state.links =
                spec.links_for(state.alloc_bandwidth).expect("shrinking allocation always fits");
            if state.links == 0 {
                state.extra_links = 0;
            }
        }
        for (site, servers) in ledger.compute {
            self.compute[site.0].used = self.compute[site.0].used.saturating_sub(servers);
        }
        for (site, ratio) in ledger.spares {
            let state = &mut self.compute[site.0];
            state.spare_demand = state.spare_demand.saturating_sub(1);
            state.spare_allocated = spare_pool_size(state.spare_demand, ratio);
        }
    }

    /// Applications with at least one allocation.
    pub fn allocated_apps(&self) -> impl Iterator<Item = AppId> + '_ {
        self.ledgers.keys().copied()
    }

    /// Adds `extra` disks to an instantiated array (the configuration
    /// solver's resource-addition loop).
    ///
    /// # Errors
    ///
    /// [`ResourceError::ExtraUnitsExceedMaximum`] if the array is not
    /// instantiated or the total would exceed the spec maximum.
    pub fn add_extra_array_units(&mut self, r: ArrayRef, extra: u32) -> Result<(), ResourceError> {
        let spec = self.array_spec(r)?.clone();
        let idx = self.array_index(r);
        let Some(state) = self.arrays[idx].as_mut() else {
            return Err(ResourceError::ExtraUnitsExceedMaximum {
                device: format!("{spec} @ {r} (not instantiated)"),
            });
        };
        if state.capacity_units + state.extra_units + extra > spec.max_capacity_units {
            return Err(ResourceError::ExtraUnitsExceedMaximum { device: format!("{spec} @ {r}") });
        }
        state.extra_units += extra;
        Ok(())
    }

    /// Adds `extra` drives to an instantiated tape library.
    ///
    /// # Errors
    ///
    /// [`ResourceError::ExtraUnitsExceedMaximum`] as for arrays.
    pub fn add_extra_tape_drives(&mut self, r: TapeRef, extra: u32) -> Result<(), ResourceError> {
        let spec = self.tape_spec(r)?.clone();
        let idx = self.tape_index(r);
        let Some(state) = self.tapes[idx].as_mut() else {
            return Err(ResourceError::ExtraUnitsExceedMaximum {
                device: format!("{spec} @ {r} (not instantiated)"),
            });
        };
        if state.drives + state.extra_drives + extra > spec.max_bandwidth_units {
            return Err(ResourceError::ExtraUnitsExceedMaximum { device: format!("{spec} @ {r}") });
        }
        state.extra_drives += extra;
        Ok(())
    }

    /// Adds `extra` links to a route that already carries traffic.
    ///
    /// # Errors
    ///
    /// [`ResourceError::ExtraUnitsExceedMaximum`] if the total would
    /// exceed the route's link maximum.
    pub fn add_extra_links(&mut self, r: RouteId, extra: u32) -> Result<(), ResourceError> {
        let spec = self.topology.route(r).network.clone();
        let state = &mut self.links[r.0];
        if state.links + state.extra_links + extra > spec.max_links {
            return Err(ResourceError::ExtraUnitsExceedMaximum { device: format!("network {r}") });
        }
        state.extra_links += extra;
        Ok(())
    }

    /// Total effective bandwidth of a device (including extra units),
    /// zero if not instantiated.
    #[must_use]
    pub fn device_bandwidth(&self, d: DeviceRef) -> MegabytesPerSec {
        match d {
            DeviceRef::Array(r) => match (self.array(r), self.array_spec(r)) {
                (Some(s), Ok(spec)) => {
                    spec.effective_bandwidth(s.capacity_units + s.extra_units, 0)
                }
                _ => MegabytesPerSec::ZERO,
            },
            DeviceRef::Tape(r) => match (self.tape(r), self.tape_spec(r)) {
                (Some(s), Ok(spec)) => {
                    spec.effective_bandwidth(s.cartridges, s.drives + s.extra_drives)
                }
                _ => MegabytesPerSec::ZERO,
            },
            DeviceRef::Route(r) => {
                let state = &self.links[r.0];
                self.topology.route(r).network.bandwidth(state.links + state.extra_links)
            }
        }
    }

    /// Bandwidth currently allocated on a device by normal operation.
    #[must_use]
    pub fn device_alloc_bandwidth(&self, d: DeviceRef) -> MegabytesPerSec {
        match d {
            DeviceRef::Array(r) => {
                self.array(r).map_or(MegabytesPerSec::ZERO, |s| s.alloc_bandwidth)
            }
            DeviceRef::Tape(r) => self.tape(r).map_or(MegabytesPerSec::ZERO, |s| s.alloc_bandwidth),
            DeviceRef::Route(r) => self.links[r.0].alloc_bandwidth,
        }
    }

    /// Bandwidth allocated on device `d` by application `app`
    /// specifically. During recovery a failed application stops running,
    /// so its own share is available to the restore stream in addition to
    /// the device's spare bandwidth.
    #[must_use]
    pub fn app_alloc_bandwidth_on(&self, app: AppId, d: DeviceRef) -> MegabytesPerSec {
        let Some(ledger) = self.ledgers.get(&app) else {
            return MegabytesPerSec::ZERO;
        };
        match d {
            DeviceRef::Array(r) => {
                ledger.arrays.iter().filter(|(a, _, _)| *a == r).map(|&(_, _, bw)| bw).sum()
            }
            DeviceRef::Tape(r) => {
                ledger.tapes.iter().filter(|(t, _, _)| *t == r).map(|&(_, _, bw)| bw).sum()
            }
            DeviceRef::Route(r) => {
                ledger.routes.iter().filter(|(route, _)| *route == r).map(|&(_, bw)| bw).sum()
            }
        }
    }

    /// Spare (unallocated) bandwidth on a device — what recovery
    /// operations can use while unaffected workloads keep running (paper
    /// §3.2.2: "the remaining bandwidth and capacity are made available
    /// for recovery operations").
    #[must_use]
    pub fn spare_bandwidth(&self, d: DeviceRef) -> MegabytesPerSec {
        self.device_bandwidth(d) - self.device_alloc_bandwidth(d)
    }

    /// Bandwidth utilization of a device in `[0, 1]`; 1.0 when the device
    /// is not instantiated (so selection biases avoid it only as much as a
    /// full device).
    #[must_use]
    pub fn utilization(&self, d: DeviceRef) -> f64 {
        let total = self.device_bandwidth(d);
        if total.is_zero() {
            return 1.0;
        }
        (self.device_alloc_bandwidth(d) / total).min(1.0)
    }

    /// True if the site hosts any instantiated device, link endpoint or
    /// compute server.
    #[must_use]
    pub fn site_in_use(&self, site: SiteId) -> bool {
        let s = self.topology.site(site);
        let arrays_used =
            (0..s.array_slots.len()).any(|slot| self.array(ArrayRef { site, slot }).is_some());
        let tapes_used =
            (0..s.tape_slots.len()).any(|slot| self.tape(TapeRef { site, slot }).is_some());
        let links_used = self.topology.route_ids().any(|rid| {
            let st = &self.links[rid.0];
            (st.links + st.extra_links) > 0 && self.topology.route(rid).touches(site)
        });
        arrays_used || tapes_used || links_used || self.compute[site.0].total() > 0
    }

    /// All currently instantiated arrays.
    #[must_use]
    pub fn provisioned_arrays(&self) -> Vec<ArrayRef> {
        let mut out = Vec::new();
        for site in self.topology.sites() {
            for slot in 0..site.array_slots.len() {
                let r = ArrayRef { site: site.id, slot };
                if self.array(r).is_some() {
                    out.push(r);
                }
            }
        }
        out
    }

    /// All currently instantiated tape libraries.
    #[must_use]
    pub fn provisioned_tapes(&self) -> Vec<TapeRef> {
        let mut out = Vec::new();
        for site in self.topology.sites() {
            for slot in 0..site.tape_slots.len() {
                let r = TapeRef { site: site.id, slot };
                if self.tape(r).is_some() {
                    out.push(r);
                }
            }
        }
        out
    }

    /// All routes carrying at least one provisioned link.
    #[must_use]
    pub fn active_routes(&self) -> Vec<RouteId> {
        self.topology
            .route_ids()
            .filter(|r| {
                let s = &self.links[r.0];
                s.links + s.extra_links > 0
            })
            .collect()
    }

    /// Itemized purchase outlay, one line per device, compute pool,
    /// facility and route, in the exact order [`Provision::purchase_outlay`]
    /// visits them. Folding the items' `purchase` fields left-to-right
    /// reproduces the aggregate outlay bit-for-bit — `purchase_outlay` is
    /// itself implemented as that fold.
    #[must_use]
    pub fn outlay_items(&self) -> Vec<OutlayItem> {
        let mut items = Vec::new();
        for site in self.topology.sites() {
            for slot in 0..site.array_slots.len() {
                let r = ArrayRef { site: site.id, slot };
                if let Some(s) = self.array(r) {
                    let spec = &site.array_slots[slot];
                    items.push(OutlayItem {
                        kind: OutlayKind::DiskArray,
                        label: format!("{r} ({})", spec.name),
                        purchase: spec.purchase_cost(s.capacity_units + s.extra_units, 0),
                    });
                }
            }
            for slot in 0..site.tape_slots.len() {
                let r = TapeRef { site: site.id, slot };
                if let Some(s) = self.tape(r) {
                    let spec = &site.tape_slots[slot];
                    items.push(OutlayItem {
                        kind: OutlayKind::TapeLibrary,
                        label: format!("{r} ({})", spec.name),
                        purchase: spec.purchase_cost(s.cartridges, s.drives + s.extra_drives),
                    });
                }
            }
            items.push(OutlayItem {
                kind: OutlayKind::SpareCompute,
                label: format!("compute@{} ({} servers)", site.id, self.compute[site.id.0].total()),
                purchase: site.compute.cost_per_server * f64::from(self.compute[site.id.0].total()),
            });
            if self.site_in_use(site.id) {
                items.push(OutlayItem {
                    kind: OutlayKind::Facility,
                    label: format!("facility@{} ({})", site.id, site.name),
                    purchase: site.facility_cost,
                });
            }
        }
        for rid in self.topology.route_ids() {
            let st = &self.links[rid.0];
            let route = self.topology.route(rid);
            items.push(OutlayItem {
                kind: OutlayKind::NetworkLink,
                label: format!("{rid} ({} links)", st.links + st.extra_links),
                purchase: route.network.cost_per_link * f64::from(st.links + st.extra_links),
            });
        }
        items
    }

    /// Unamortized purchase price of the whole provisioned infrastructure,
    /// including facility costs of used sites. Defined as the in-order fold
    /// of [`Provision::outlay_items`], so the itemization is bit-identical
    /// to the aggregate by construction.
    #[must_use]
    pub fn purchase_outlay(&self) -> Dollars {
        let mut total = Dollars::ZERO;
        for item in self.outlay_items() {
            total += item.purchase;
        }
        total
    }

    /// Annualized outlay: purchase price amortized over the three-year
    /// device lifetime (paper §2.5).
    #[must_use]
    pub fn annual_outlay(&self) -> Dollars {
        self.purchase_outlay().amortized_annual()
    }

    fn site_exists(&self, s: SiteId) -> bool {
        s.0 < self.compute.len()
    }

    fn valid_array(&self, r: ArrayRef) -> bool {
        self.site_exists(r.site) && r.slot < self.topology.site(r.site).array_slots.len()
    }

    fn valid_tape(&self, r: TapeRef) -> bool {
        self.site_exists(r.site) && r.slot < self.topology.site(r.site).tape_slots.len()
    }

    /// The ledger-derived footprint of `app`: every device and site its
    /// allocations touch. Empty when the application holds nothing.
    #[must_use]
    pub fn app_footprint(&self, app: AppId) -> AppFootprint {
        let mut fp = AppFootprint::default();
        if let Some(l) = self.ledgers.get(&app) {
            fp.arrays.extend(l.arrays.iter().map(|&(r, _, _)| r));
            fp.tapes.extend(l.tapes.iter().map(|&(r, _, _)| r));
            fp.routes.extend(l.routes.iter().map(|&(r, _)| r));
            fp.sites.extend(l.compute.iter().map(|&(s, _)| s));
            fp.sites.extend(l.spares.iter().map(|&(s, _)| s));
        }
        fp
    }

    /// Snapshots the exact state of the given devices and sites, plus
    /// `app`'s allocation ledger when one is named. References that do
    /// not exist in the topology are skipped — an allocation against
    /// them fails before mutating anything, so there is no state to
    /// protect. Duplicate references are harmless: every snapshot is
    /// taken at the same instant, so re-restoring one is idempotent.
    #[must_use]
    pub fn checkpoint(
        &self,
        app: Option<AppId>,
        arrays: &[ArrayRef],
        tapes: &[TapeRef],
        routes: &[RouteId],
        sites: &[SiteId],
    ) -> ProvisionCheckpoint {
        ProvisionCheckpoint {
            arrays: arrays
                .iter()
                .filter(|&&r| self.valid_array(r))
                .map(|&r| {
                    let i = self.array_index(r);
                    (i, self.arrays[i].clone())
                })
                .collect(),
            tapes: tapes
                .iter()
                .filter(|&&r| self.valid_tape(r))
                .map(|&r| {
                    let i = self.tape_index(r);
                    (i, self.tapes[i].clone())
                })
                .collect(),
            links: routes
                .iter()
                .filter(|r| r.0 < self.links.len())
                .map(|&r| (r.0, self.links[r.0].clone()))
                .collect(),
            compute: sites
                .iter()
                .filter(|&&s| self.site_exists(s))
                .map(|&s| (s.0, self.compute[s.0].clone()))
                .collect(),
            ledger: app.map(|a| (a, self.ledgers.get(&a).cloned())),
        }
    }

    /// Writes a checkpoint back, restoring every covered device state,
    /// compute state, and ledger entry to its snapshotted bits. State
    /// outside the checkpoint is untouched — the caller must checkpoint
    /// everything the undone mutation could have reached.
    pub fn restore(&mut self, checkpoint: ProvisionCheckpoint) {
        for (i, s) in checkpoint.arrays {
            self.arrays[i] = s;
        }
        for (i, s) in checkpoint.tapes {
            self.tapes[i] = s;
        }
        for (i, s) in checkpoint.links {
            self.links[i] = s;
        }
        for (i, s) in checkpoint.compute {
            self.compute[i] = s;
        }
        if let Some((app, ledger)) = checkpoint.ledger {
            match ledger {
                Some(l) => {
                    self.ledgers.insert(app, l);
                }
                None => {
                    self.ledgers.remove(&app);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DeviceSpec, NetworkSpec};
    use crate::topology::Site;

    fn topology() -> Arc<Topology> {
        let sites = vec![
            Site::new(0, "P1")
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8),
            Site::new(1, "P2")
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8),
        ];
        Arc::new(Topology::fully_connected(sites, NetworkSpec::high()))
    }

    const A0: ArrayRef = ArrayRef { site: SiteId(0), slot: 0 };
    const APP: AppId = AppId(0);

    #[test]
    fn alloc_array_instantiates_and_sizes() {
        let mut p = Provision::new(topology());
        assert!(p.array(A0).is_none());
        p.alloc_array(APP, A0, Gigabytes::new(1300.0), MegabytesPerSec::new(50.0)).unwrap();
        let s = p.array(A0).unwrap();
        assert_eq!(s.capacity_units, 10, "1300 GB / 143 GB per disk");
        assert_eq!(s.alloc_bandwidth.as_f64(), 50.0);
        assert_eq!(p.device_bandwidth(DeviceRef::Array(A0)).as_f64(), 250.0);
        assert_eq!(p.spare_bandwidth(DeviceRef::Array(A0)).as_f64(), 200.0);
    }

    #[test]
    fn alloc_array_accumulates_and_errors_leave_state() {
        let mut p = Provision::new(topology());
        let msa = ArrayRef { site: SiteId(0), slot: 1 };
        p.alloc_array(APP, msa, Gigabytes::new(500.0), MegabytesPerSec::new(50.0)).unwrap();
        // MSA enclosure is 128 MB/s; asking 100 more must fail.
        let err = p
            .alloc_array(AppId(1), msa, Gigabytes::new(1.0), MegabytesPerSec::new(100.0))
            .unwrap_err();
        assert!(matches!(err, ResourceError::DeviceExhausted { .. }));
        let s = p.array(msa).unwrap();
        assert_eq!(s.alloc_capacity.as_f64(), 500.0, "failed alloc must not mutate");
        assert!(!p.ledgers.contains_key(&AppId(1)));
    }

    #[test]
    fn remove_app_releases_everything() {
        let mut p = Provision::new(topology());
        p.alloc_array(APP, A0, Gigabytes::new(1300.0), MegabytesPerSec::new(50.0)).unwrap();
        p.alloc_tape(
            APP,
            TapeRef::first(SiteId(0)),
            Gigabytes::new(2600.0),
            MegabytesPerSec::new(31.0),
        )
        .unwrap();
        p.alloc_network(APP, SiteId(0), SiteId(1), MegabytesPerSec::new(5.0)).unwrap();
        p.alloc_compute(APP, SiteId(0), 1).unwrap();
        assert!(p.site_in_use(SiteId(0)));

        p.remove_app(APP);
        assert!(p.array(A0).is_none());
        assert!(p.tape(TapeRef::first(SiteId(0))).is_none());
        assert_eq!(p.link(RouteId(0)).links, 0);
        assert_eq!(p.compute(SiteId(0)).used, 0);
        assert!(!p.site_in_use(SiteId(0)));
        assert_eq!(p.purchase_outlay(), Dollars::ZERO);
    }

    #[test]
    fn remove_app_shrinks_shared_devices() {
        let mut p = Provision::new(topology());
        p.alloc_array(AppId(0), A0, Gigabytes::new(1300.0), MegabytesPerSec::new(50.0)).unwrap();
        p.alloc_array(AppId(1), A0, Gigabytes::new(4300.0), MegabytesPerSec::new(20.0)).unwrap();
        assert_eq!(p.array(A0).unwrap().capacity_units, 40, "ceil(5600/143)");
        p.remove_app(AppId(1));
        let s = p.array(A0).unwrap();
        assert_eq!(s.capacity_units, 10);
        assert_eq!(s.alloc_bandwidth.as_f64(), 50.0);
    }

    #[test]
    fn remove_unknown_app_is_noop() {
        let mut p = Provision::new(topology());
        p.remove_app(AppId(99));
        assert_eq!(p.purchase_outlay(), Dollars::ZERO);
    }

    #[test]
    fn network_allocation_sizes_links() {
        let mut p = Provision::new(topology());
        let route = p.alloc_network(APP, SiteId(0), SiteId(1), MegabytesPerSec::new(50.0)).unwrap();
        assert_eq!(p.link(route).links, 3, "ceil(50/20)");
        assert_eq!(p.device_bandwidth(DeviceRef::Route(route)).as_f64(), 60.0);
        assert_eq!(p.spare_bandwidth(DeviceRef::Route(route)).as_f64(), 10.0);
    }

    #[test]
    fn compute_limit_enforced() {
        let mut p = Provision::new(topology());
        p.alloc_compute(APP, SiteId(0), 8).unwrap();
        let err = p.alloc_compute(AppId(1), SiteId(0), 1).unwrap_err();
        assert!(matches!(err, ResourceError::ComputeExhausted { .. }));
        assert_eq!(p.compute(SiteId(0)).used, 8);
    }

    #[test]
    fn extras_grow_bandwidth_and_cost() {
        let mut p = Provision::new(topology());
        p.alloc_array(APP, A0, Gigabytes::new(143.0), MegabytesPerSec::new(25.0)).unwrap();
        let before = p.purchase_outlay();
        p.add_extra_array_units(A0, 4).unwrap();
        assert_eq!(p.device_bandwidth(DeviceRef::Array(A0)).as_f64(), 125.0);
        let after = p.purchase_outlay();
        assert_eq!((after - before).as_f64(), 4.0 * 8723.0);
    }

    #[test]
    fn extras_rejected_without_instance_or_beyond_max() {
        let mut p = Provision::new(topology());
        assert!(p.add_extra_array_units(A0, 1).is_err(), "not instantiated");
        p.alloc_array(APP, A0, Gigabytes::new(143.0), MegabytesPerSec::ZERO).unwrap();
        assert!(p.add_extra_array_units(A0, 2000).is_err(), "beyond max disks");
        p.alloc_tape(
            APP,
            TapeRef::first(SiteId(0)),
            Gigabytes::new(60.0),
            MegabytesPerSec::new(120.0),
        )
        .unwrap();
        assert!(p.add_extra_tape_drives(TapeRef::first(SiteId(0)), 24).is_err());
        p.alloc_network(APP, SiteId(0), SiteId(1), MegabytesPerSec::new(20.0)).unwrap();
        assert!(p.add_extra_links(RouteId(0), 32).is_err());
        assert!(p.add_extra_links(RouteId(0), 2).is_ok());
        assert_eq!(p.device_bandwidth(DeviceRef::Route(RouteId(0))).as_f64(), 60.0);
    }

    #[test]
    fn outlay_matches_hand_computation() {
        let mut p = Provision::new(topology());
        p.alloc_array(APP, A0, Gigabytes::new(1300.0), MegabytesPerSec::new(50.0)).unwrap();
        p.alloc_compute(APP, SiteId(0), 1).unwrap();
        let expected = 375_000.0 + 10.0 * 8_723.0 + 125_000.0 + 1_000_000.0;
        assert_eq!(p.purchase_outlay().as_f64(), expected);
        assert!((p.annual_outlay().as_f64() - expected / 3.0).abs() < 1e-9);
    }

    #[test]
    fn outlay_items_fold_to_the_aggregate_bit_for_bit() {
        let mut p = Provision::new(topology());
        p.alloc_array(APP, A0, Gigabytes::new(1300.0), MegabytesPerSec::new(50.0)).unwrap();
        p.alloc_tape(
            APP,
            TapeRef::first(SiteId(1)),
            Gigabytes::new(500.0),
            MegabytesPerSec::new(10.0),
        )
        .unwrap();
        p.alloc_compute(APP, SiteId(0), 1).unwrap();
        p.alloc_network(APP, SiteId(0), SiteId(1), MegabytesPerSec::new(20.0)).unwrap();
        let items = p.outlay_items();
        let mut folded = Dollars::ZERO;
        for item in &items {
            folded += item.purchase;
        }
        assert_eq!(folded.as_f64().to_bits(), p.purchase_outlay().as_f64().to_bits());
        let kinds: Vec<OutlayKind> = items.iter().map(|i| i.kind).collect();
        assert!(kinds.contains(&OutlayKind::DiskArray));
        assert!(kinds.contains(&OutlayKind::TapeLibrary));
        assert!(kinds.contains(&OutlayKind::SpareCompute));
        assert!(kinds.contains(&OutlayKind::Facility));
        assert!(kinds.contains(&OutlayKind::NetworkLink));
    }

    #[test]
    fn facility_charged_once_per_used_site() {
        let mut p = Provision::new(topology());
        p.alloc_network(APP, SiteId(0), SiteId(1), MegabytesPerSec::new(20.0)).unwrap();
        // One link touches both sites: both facilities charged.
        let expected = 500_000.0 + 2.0 * 1_000_000.0;
        assert_eq!(p.purchase_outlay().as_f64(), expected);
    }

    #[test]
    fn utilization_bounds() {
        let mut p = Provision::new(topology());
        assert_eq!(p.utilization(DeviceRef::Array(A0)), 1.0, "uninstantiated counts as full");
        p.alloc_array(APP, A0, Gigabytes::new(143.0), MegabytesPerSec::new(12.5)).unwrap();
        assert!((p.utilization(DeviceRef::Array(A0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missing_slots_error() {
        let mut p = Provision::new(topology());
        let bad = ArrayRef { site: SiteId(0), slot: 9 };
        assert!(matches!(
            p.alloc_array(APP, bad, Gigabytes::new(1.0), MegabytesPerSec::ZERO),
            Err(ResourceError::NoSuchArraySlot { .. })
        ));
        let bad_tape = TapeRef { site: SiteId(1), slot: 3 };
        assert!(matches!(
            p.alloc_tape(APP, bad_tape, Gigabytes::new(1.0), MegabytesPerSec::ZERO),
            Err(ResourceError::NoSuchTapeSlot { .. })
        ));
    }

    #[test]
    fn spare_pool_shares_servers_at_fractional_ratios() {
        let mut p = Provision::new(topology());
        // Four failover members at ratio 0.5 -> 1,1,2,2 spares.
        for (i, expected) in [(0u32, 1u32), (1, 1), (2, 2), (3, 2)] {
            p.alloc_failover_spare(AppId(i as usize), SiteId(1), 0.5).unwrap();
            assert_eq!(p.compute(SiteId(1)).spare_allocated, expected);
        }
        assert_eq!(p.compute(SiteId(1)).spare_demand, 4);
        assert_eq!(p.compute(SiteId(1)).total(), 2);
        // Removing members shrinks the pool back down.
        p.remove_app(AppId(3));
        p.remove_app(AppId(2));
        assert_eq!(p.compute(SiteId(1)).spare_allocated, 1);
        p.remove_app(AppId(1));
        p.remove_app(AppId(0));
        assert_eq!(p.compute(SiteId(1)).spare_allocated, 0);
        assert_eq!(p.purchase_outlay(), Dollars::ZERO);
    }

    #[test]
    fn dedicated_ratio_matches_one_spare_per_app() {
        let mut p = Provision::new(topology());
        for i in 0..3 {
            p.alloc_failover_spare(AppId(i), SiteId(0), 1.0).unwrap();
        }
        assert_eq!(p.compute(SiteId(0)).spare_allocated, 3);
        // Spares count against the site limit together with primaries.
        p.alloc_compute(AppId(9), SiteId(0), 5).unwrap();
        let err = p.alloc_failover_spare(AppId(10), SiteId(0), 1.0).unwrap_err();
        assert!(matches!(err, ResourceError::ComputeExhausted { .. }));
        assert_eq!(p.compute(SiteId(0)).spare_demand, 3, "failed alloc must not mutate");
    }

    #[test]
    fn spares_are_charged_in_outlay() {
        let mut p = Provision::new(topology());
        p.alloc_failover_spare(AppId(0), SiteId(0), 1.0).unwrap();
        // 1 spare server + the site facility.
        assert_eq!(p.purchase_outlay().as_f64(), 125_000.0 + 1_000_000.0);
    }

    #[test]
    fn per_app_bandwidth_on_device() {
        let mut p = Provision::new(topology());
        p.alloc_array(AppId(0), A0, Gigabytes::new(143.0), MegabytesPerSec::new(10.0)).unwrap();
        p.alloc_array(AppId(1), A0, Gigabytes::new(143.0), MegabytesPerSec::new(30.0)).unwrap();
        let d = DeviceRef::Array(A0);
        assert_eq!(p.app_alloc_bandwidth_on(AppId(0), d).as_f64(), 10.0);
        assert_eq!(p.app_alloc_bandwidth_on(AppId(1), d).as_f64(), 30.0);
        assert_eq!(p.app_alloc_bandwidth_on(AppId(2), d).as_f64(), 0.0);
        let other = DeviceRef::Tape(TapeRef::first(SiteId(0)));
        assert_eq!(p.app_alloc_bandwidth_on(AppId(0), other).as_f64(), 0.0);
    }

    #[test]
    fn allocated_apps_lists_ledger() {
        let mut p = Provision::new(topology());
        p.alloc_compute(AppId(3), SiteId(0), 1).unwrap();
        p.alloc_compute(AppId(1), SiteId(0), 1).unwrap();
        let apps: Vec<AppId> = p.allocated_apps().collect();
        assert_eq!(apps, vec![AppId(1), AppId(3)], "sorted by id");
    }

    fn populated() -> Provision {
        let mut p = Provision::new(topology());
        p.alloc_array(APP, A0, Gigabytes::new(1300.0), MegabytesPerSec::new(50.0)).unwrap();
        p.alloc_tape(
            APP,
            TapeRef::first(SiteId(0)),
            Gigabytes::new(2600.0),
            MegabytesPerSec::new(31.0),
        )
        .unwrap();
        p.alloc_network(APP, SiteId(0), SiteId(1), MegabytesPerSec::new(5.0)).unwrap();
        p.alloc_compute(APP, SiteId(0), 1).unwrap();
        p.alloc_failover_spare(APP, SiteId(1), 1.0).unwrap();
        p
    }

    #[test]
    fn app_footprint_lists_every_touched_resource() {
        let p = populated();
        let fp = p.app_footprint(APP);
        assert_eq!(fp.arrays, vec![A0]);
        assert_eq!(fp.tapes, vec![TapeRef::first(SiteId(0))]);
        assert_eq!(fp.routes.len(), 1);
        assert_eq!(fp.sites, vec![SiteId(0), SiteId(1)]);
        assert!(p.app_footprint(AppId(7)).arrays.is_empty());
    }

    #[test]
    fn checkpoint_restore_roundtrips_exact_state() {
        let mut p = populated();
        let before = p.clone();
        let fp = p.app_footprint(APP);
        let cp = p.checkpoint(Some(APP), &fp.arrays, &fp.tapes, &fp.routes, &fp.sites);
        p.remove_app(APP);
        assert_ne!(p, before);
        p.restore(cp);
        assert_eq!(p, before, "restore must reproduce the snapshotted bits");
        // Ledger restored too: removing again releases everything.
        p.remove_app(APP);
        assert_eq!(p.purchase_outlay(), Dollars::ZERO);
    }

    #[test]
    fn checkpoint_restores_extras_and_absent_ledger() {
        let mut p = populated();
        p.add_extra_array_units(A0, 2).unwrap();
        let before = p.clone();
        // Checkpoint under an app with no ledger: restore must remove a
        // ledger created in between.
        let cp = p.checkpoint(Some(AppId(5)), &[A0], &[], &[], &[SiteId(0)]);
        p.alloc_array(AppId(5), A0, Gigabytes::new(143.0), MegabytesPerSec::new(1.0)).unwrap();
        p.alloc_compute(AppId(5), SiteId(0), 1).unwrap();
        p.restore(cp);
        assert_eq!(p, before);
        assert!(!p.ledgers.contains_key(&AppId(5)));
        assert_eq!(p.array(A0).unwrap().extra_units, 2, "extras survive the roundtrip");
    }

    #[test]
    fn checkpoint_skips_out_of_topology_references() {
        let p = populated();
        let cp = p.checkpoint(
            None,
            &[ArrayRef { site: SiteId(9), slot: 0 }, ArrayRef { site: SiteId(0), slot: 9 }],
            &[TapeRef { site: SiteId(9), slot: 0 }],
            &[RouteId(99)],
            &[SiteId(9)],
        );
        let mut q = p.clone();
        q.restore(cp); // must not panic or mutate
        assert_eq!(q, p);
    }
}
