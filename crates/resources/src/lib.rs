#![warn(missing_docs)]

//! Device infrastructure for the dependable storage designer.
//!
//! Models the paper's §2.3 resource layer:
//!
//! * [`DeviceSpec`] — a purchasable device type with a fixed (enclosure)
//!   cost, discrete capacity units (disks, cartridges) and bandwidth units
//!   (disks again, tape drives), per-unit incremental costs, and hard
//!   capacity/bandwidth ceilings. Table 3's disk arrays and tape libraries
//!   are provided as constructors.
//! * [`NetworkSpec`] / [`ComputeSpec`] — inter-site links and servers.
//! * [`Site`] and [`Topology`] — data-center sites with device slots,
//!   facility costs, and the link routes connecting them.
//! * [`Provision`] — the mutable resource state of one candidate design:
//!   which devices are instantiated with how many units, per-application
//!   allocations, spare bandwidth for recovery, and the amortized annual
//!   outlay (§2.5).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use dsd_resources::{DeviceSpec, Site, Topology, Provision, ArrayRef};
//! use dsd_units::{Gigabytes, MegabytesPerSec};
//! use dsd_workload::AppId;
//!
//! let site = Site::new(0, "P1")
//!     .with_array_slot(DeviceSpec::xp1200())
//!     .with_tape_library(DeviceSpec::tape_library_high())
//!     .with_compute(8);
//! let topology = Arc::new(Topology::new(vec![site], vec![]));
//! let mut prov = Provision::new(topology);
//! let array = ArrayRef { site: dsd_resources::SiteId(0), slot: 0 };
//! prov.alloc_array(AppId(0), array, Gigabytes::new(1300.0), MegabytesPerSec::new(50.0))?;
//! assert!(prov.annual_outlay().as_f64() > 0.0);
//! # Ok::<(), dsd_resources::ResourceError>(())
//! ```

mod error;
mod provision;
mod spec;
mod topology;

pub use error::ResourceError;
pub use provision::{
    AppFootprint, ArrayRef, ArrayState, ComputeState, DeviceRef, LinkState, OutlayItem, OutlayKind,
    Provision, ProvisionCheckpoint, TapeRef, TapeState,
};
pub use spec::{ComputeSpec, DeviceClass, DeviceKind, DeviceSpec, NetworkSpec};
pub use topology::{Route, RouteId, Site, SiteId, Topology};
