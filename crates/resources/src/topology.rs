//! Data-center sites and the link routes connecting them.

use std::fmt;

use serde::{Deserialize, Serialize};

use dsd_units::Dollars;

use crate::spec::{ComputeSpec, DeviceSpec, NetworkSpec};

/// Identifier of a site within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub usize);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

/// Identifier of an inter-site route within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RouteId(pub usize);

impl fmt::Display for RouteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "route#{}", self.0)
    }
}

/// A data-center site: facility cost plus slots for devices (paper §4.3:
/// "each site can accommodate a maximum of two disk arrays ..., a single
/// tape library and compute resources for eight applications").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Identifier (must equal the site's index in the topology).
    pub id: SiteId,
    /// Human-readable name, e.g. `"P1"`.
    pub name: String,
    /// Facility cost (unamortized; Table 3: $1M), charged if the site is
    /// used at all.
    pub facility_cost: Dollars,
    /// Disk array slots; at most one array instance per slot, of the
    /// slot's spec.
    pub array_slots: Vec<DeviceSpec>,
    /// Tape library slots; at most one library per slot.
    pub tape_slots: Vec<DeviceSpec>,
    /// Maximum compute servers at this site.
    pub max_compute: u32,
    /// Server pricing.
    pub compute: ComputeSpec,
}

impl Site {
    /// Creates an empty site with the Table 3 facility cost and no slots.
    #[must_use]
    pub fn new(id: usize, name: impl Into<String>) -> Self {
        Site {
            id: SiteId(id),
            name: name.into(),
            facility_cost: Dollars::new(1_000_000.0),
            array_slots: Vec::new(),
            tape_slots: Vec::new(),
            max_compute: 0,
            compute: ComputeSpec::default(),
        }
    }

    /// Adds a disk array slot of the given spec (builder style).
    #[must_use]
    pub fn with_array_slot(mut self, spec: DeviceSpec) -> Self {
        self.array_slots.push(spec);
        self
    }

    /// Adds a tape library slot of the given spec (builder style).
    #[must_use]
    pub fn with_tape_library(mut self, spec: DeviceSpec) -> Self {
        self.tape_slots.push(spec);
        self
    }

    /// Sets the compute server limit (builder style).
    #[must_use]
    pub fn with_compute(mut self, max_servers: u32) -> Self {
        self.max_compute = max_servers;
        self
    }

    /// Overrides the facility cost (builder style).
    #[must_use]
    pub fn with_facility_cost(mut self, cost: Dollars) -> Self {
        self.facility_cost = cost;
        self
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} array slots, {} tape slots, {} compute)",
            self.name,
            self.array_slots.len(),
            self.tape_slots.len(),
            self.max_compute
        )
    }
}

/// An undirected link route between two sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// One endpoint.
    pub a: SiteId,
    /// The other endpoint.
    pub b: SiteId,
    /// Link type purchasable on this route.
    pub network: NetworkSpec,
}

impl Route {
    /// True if the route connects `x` and `y` (in either order).
    #[must_use]
    pub fn connects(&self, x: SiteId, y: SiteId) -> bool {
        (self.a == x && self.b == y) || (self.a == y && self.b == x)
    }

    /// True if the route touches site `s`.
    #[must_use]
    pub fn touches(&self, s: SiteId) -> bool {
        self.a == s || self.b == s
    }
}

/// The static site/route structure of an environment. Provisioned state
/// (device instances, link counts, allocations) lives in
/// [`crate::Provision`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    sites: Vec<Site>,
    routes: Vec<Route>,
}

impl Topology {
    /// Builds a topology.
    ///
    /// # Panics
    ///
    /// Panics if site ids don't match their indices, a route endpoint is
    /// out of range, a route is a self-loop, or two routes connect the
    /// same pair.
    #[must_use]
    pub fn new(sites: Vec<Site>, routes: Vec<Route>) -> Self {
        for (i, s) in sites.iter().enumerate() {
            assert_eq!(s.id.0, i, "site id must equal its index");
        }
        for r in &routes {
            assert!(r.a.0 < sites.len() && r.b.0 < sites.len(), "route endpoint out of range");
            assert_ne!(r.a, r.b, "route cannot be a self-loop");
        }
        for (i, r) in routes.iter().enumerate() {
            for other in &routes[i + 1..] {
                assert!(!other.connects(r.a, r.b), "duplicate route between {} and {}", r.a, r.b);
            }
        }
        Topology { sites, routes }
    }

    /// Fully connects `sites` with routes of type `network`.
    #[must_use]
    pub fn fully_connected(sites: Vec<Site>, network: NetworkSpec) -> Self {
        let mut routes = Vec::new();
        for i in 0..sites.len() {
            for j in i + 1..sites.len() {
                routes.push(Route { a: SiteId(i), b: SiteId(j), network: network.clone() });
            }
        }
        Topology::new(sites, routes)
    }

    /// Number of sites.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Number of routes.
    #[must_use]
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// The sites in id order.
    #[must_use]
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// The routes in id order.
    #[must_use]
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Looks up a site.
    #[must_use]
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.0]
    }

    /// Looks up a route.
    #[must_use]
    pub fn route(&self, id: RouteId) -> &Route {
        &self.routes[id.0]
    }

    /// All site ids.
    pub fn site_ids(&self) -> impl Iterator<Item = SiteId> + '_ {
        (0..self.sites.len()).map(SiteId)
    }

    /// All route ids.
    pub fn route_ids(&self) -> impl Iterator<Item = RouteId> + '_ {
        (0..self.routes.len()).map(RouteId)
    }

    /// The route between two sites, if one exists.
    #[must_use]
    pub fn route_between(&self, x: SiteId, y: SiteId) -> Option<RouteId> {
        self.routes.iter().position(|r| r.connects(x, y)).map(RouteId)
    }

    /// Sites reachable from `s` by a direct route.
    pub fn neighbors(&self, s: SiteId) -> impl Iterator<Item = SiteId> + '_ {
        self.routes
            .iter()
            .filter(move |r| r.touches(s))
            .map(move |r| if r.a == s { r.b } else { r.a })
    }

    /// Global slot index of `(site, slot)` used by flat per-array tables.
    ///
    /// # Panics
    ///
    /// Panics if the slot doesn't exist.
    #[must_use]
    pub fn array_slot_index(&self, site: SiteId, slot: usize) -> usize {
        assert!(slot < self.site(site).array_slots.len(), "array slot out of range");
        self.sites[..site.0].iter().map(|s| s.array_slots.len()).sum::<usize>() + slot
    }

    /// Total number of array slots across all sites.
    #[must_use]
    pub fn total_array_slots(&self) -> usize {
        self.sites.iter().map(|s| s.array_slots.len()).sum()
    }

    /// Total number of tape slots across all sites.
    #[must_use]
    pub fn total_tape_slots(&self) -> usize {
        self.sites.iter().map(|s| s.tape_slots.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_sites() -> Vec<Site> {
        vec![
            Site::new(0, "P1")
                .with_array_slot(DeviceSpec::xp1200())
                .with_array_slot(DeviceSpec::msa1500())
                .with_tape_library(DeviceSpec::tape_library_high())
                .with_compute(8),
            Site::new(1, "P2")
                .with_array_slot(DeviceSpec::xp1200())
                .with_tape_library(DeviceSpec::tape_library_med())
                .with_compute(8),
        ]
    }

    #[test]
    fn fully_connected_route_count() {
        let sites: Vec<Site> = (0..4).map(|i| Site::new(i, format!("S{i}"))).collect();
        let t = Topology::fully_connected(sites, NetworkSpec::high());
        assert_eq!(t.route_count(), 6);
        for x in t.site_ids() {
            for y in t.site_ids() {
                if x != y {
                    assert!(t.route_between(x, y).is_some());
                }
            }
        }
    }

    #[test]
    fn route_between_is_symmetric() {
        let t = Topology::fully_connected(two_sites(), NetworkSpec::high());
        let ab = t.route_between(SiteId(0), SiteId(1));
        let ba = t.route_between(SiteId(1), SiteId(0));
        assert_eq!(ab, ba);
        assert!(ab.is_some());
    }

    #[test]
    fn neighbors_enumerates_connected_sites() {
        let sites: Vec<Site> = (0..3).map(|i| Site::new(i, format!("S{i}"))).collect();
        let routes = vec![
            Route { a: SiteId(0), b: SiteId(1), network: NetworkSpec::med() },
            Route { a: SiteId(1), b: SiteId(2), network: NetworkSpec::med() },
        ];
        let t = Topology::new(sites, routes);
        let n1: Vec<SiteId> = t.neighbors(SiteId(1)).collect();
        assert_eq!(n1, vec![SiteId(0), SiteId(2)]);
        assert_eq!(t.neighbors(SiteId(0)).count(), 1);
        assert!(t.route_between(SiteId(0), SiteId(2)).is_none());
    }

    #[test]
    fn array_slot_indexing_is_dense() {
        let t = Topology::fully_connected(two_sites(), NetworkSpec::high());
        assert_eq!(t.array_slot_index(SiteId(0), 0), 0);
        assert_eq!(t.array_slot_index(SiteId(0), 1), 1);
        assert_eq!(t.array_slot_index(SiteId(1), 0), 2);
        assert_eq!(t.total_array_slots(), 3);
        assert_eq!(t.total_tape_slots(), 2);
    }

    #[test]
    #[should_panic(expected = "array slot out of range")]
    fn bad_slot_panics() {
        let t = Topology::fully_connected(two_sites(), NetworkSpec::high());
        let _ = t.array_slot_index(SiteId(1), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let sites = vec![Site::new(0, "A")];
        let routes = vec![Route { a: SiteId(0), b: SiteId(0), network: NetworkSpec::med() }];
        let _ = Topology::new(sites, routes);
    }

    #[test]
    #[should_panic(expected = "duplicate route")]
    fn duplicate_route_rejected() {
        let sites = vec![Site::new(0, "A"), Site::new(1, "B")];
        let routes = vec![
            Route { a: SiteId(0), b: SiteId(1), network: NetworkSpec::med() },
            Route { a: SiteId(1), b: SiteId(0), network: NetworkSpec::high() },
        ];
        let _ = Topology::new(sites, routes);
    }

    #[test]
    #[should_panic(expected = "site id must equal its index")]
    fn misnumbered_site_rejected() {
        let _ = Topology::new(vec![Site::new(3, "X")], vec![]);
    }

    #[test]
    fn builders_set_fields() {
        let s = Site::new(0, "X")
            .with_facility_cost(Dollars::new(5.0))
            .with_compute(3)
            .with_array_slot(DeviceSpec::eva800());
        assert_eq!(s.facility_cost.as_f64(), 5.0);
        assert_eq!(s.max_compute, 3);
        assert_eq!(s.array_slots[0].name, "EVA800");
        assert!(s.to_string().contains("1 array slots"));
    }
}
