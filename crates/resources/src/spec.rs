//! Device type specifications — the paper's Table 3 catalog.

use std::fmt;

use serde::{Deserialize, Serialize};

use dsd_units::{Dollars, Gigabytes, MegabytesPerSec};
use dsd_workload::AppClass;

/// Quality class of a device type. The human heuristic matches resource
/// classes to application classes (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Entry-level device.
    Low,
    /// Mid-range device.
    Med,
    /// Enterprise device.
    High,
}

impl DeviceClass {
    /// The application class this resource class is matched with by the
    /// human heuristic (high ↔ gold, med ↔ silver, low ↔ bronze).
    #[must_use]
    pub fn matching_app_class(self) -> AppClass {
        match self {
            DeviceClass::High => AppClass::Gold,
            DeviceClass::Med => AppClass::Silver,
            DeviceClass::Low => AppClass::Bronze,
        }
    }
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceClass::High => "high",
            DeviceClass::Med => "med",
            DeviceClass::Low => "low",
        };
        f.write_str(s)
    }
}

/// What a [`DeviceSpec`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A disk array: capacity units are disks, which also carry bandwidth.
    DiskArray,
    /// A tape library: capacity units are cartridges, bandwidth units are
    /// tape drives.
    TapeLibrary,
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceKind::DiskArray => f.write_str("disk array"),
            DeviceKind::TapeLibrary => f.write_str("tape library"),
        }
    }
}

/// A purchasable storage device type (one row of Table 3).
///
/// Capacity and bandwidth are allocated in discrete units (paper §2.3).
/// For disk arrays, a single unit (a disk) provides both capacity and
/// bandwidth, so `max_bandwidth_units == 0` and effective bandwidth is
/// `min(enclosure_bandwidth, capacity_units × bandwidth_per_unit)`. For
/// tape libraries, capacity units are cartridges and bandwidth units are
/// drives, purchased independently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Model name from Table 3, e.g. `"XP1200"`.
    pub name: String,
    /// Device kind.
    pub kind: DeviceKind,
    /// Quality class.
    pub class: DeviceClass,
    /// Fixed acquisition cost of the enclosure (unamortized).
    pub fixed_cost: Dollars,
    /// Hard ceiling on aggregate bandwidth through the enclosure.
    pub enclosure_bandwidth: MegabytesPerSec,
    /// Incremental cost per capacity unit (disk or cartridge).
    pub cost_per_capacity_unit: Dollars,
    /// Incremental cost per bandwidth unit (tape drive); zero for arrays.
    pub cost_per_bandwidth_unit: Dollars,
    /// Maximum number of capacity units.
    pub max_capacity_units: u32,
    /// Maximum number of bandwidth units; zero means bandwidth is derived
    /// from capacity units (disk arrays).
    pub max_bandwidth_units: u32,
    /// Capacity provided by one capacity unit.
    pub capacity_per_unit: Gigabytes,
    /// Bandwidth provided by one unit (per disk, or per tape drive).
    pub bandwidth_per_unit: MegabytesPerSec,
}

impl DeviceSpec {
    /// Table 3: high-end disk array (XP1200) — $375k enclosure, 512 MB/s,
    /// 1024 disks of 143 GB / 25 MB/s at $8,723 each.
    #[must_use]
    pub fn xp1200() -> Self {
        DeviceSpec {
            name: "XP1200".into(),
            kind: DeviceKind::DiskArray,
            class: DeviceClass::High,
            fixed_cost: Dollars::new(375_000.0),
            enclosure_bandwidth: MegabytesPerSec::new(512.0),
            cost_per_capacity_unit: Dollars::new(8_723.0),
            cost_per_bandwidth_unit: Dollars::ZERO,
            max_capacity_units: 1024,
            max_bandwidth_units: 0,
            capacity_per_unit: Gigabytes::new(143.0),
            bandwidth_per_unit: MegabytesPerSec::new(25.0),
        }
    }

    /// Table 3: mid-range disk array (EVA800) — $123k enclosure, 256 MB/s,
    /// 512 disks of 143 GB / 10 MB/s at $3,720 each.
    #[must_use]
    pub fn eva800() -> Self {
        DeviceSpec {
            name: "EVA800".into(),
            kind: DeviceKind::DiskArray,
            class: DeviceClass::Med,
            fixed_cost: Dollars::new(123_000.0),
            enclosure_bandwidth: MegabytesPerSec::new(256.0),
            cost_per_capacity_unit: Dollars::new(3_720.0),
            cost_per_bandwidth_unit: Dollars::ZERO,
            max_capacity_units: 512,
            max_bandwidth_units: 0,
            capacity_per_unit: Gigabytes::new(143.0),
            bandwidth_per_unit: MegabytesPerSec::new(10.0),
        }
    }

    /// Table 3: low-end disk array (MSA1500) — $123k enclosure, 128 MB/s,
    /// 128 disks of 143 GB / 8 MB/s at $3,720 each.
    #[must_use]
    pub fn msa1500() -> Self {
        DeviceSpec {
            name: "MSA1500".into(),
            kind: DeviceKind::DiskArray,
            class: DeviceClass::Low,
            fixed_cost: Dollars::new(123_000.0),
            enclosure_bandwidth: MegabytesPerSec::new(128.0),
            cost_per_capacity_unit: Dollars::new(3_720.0),
            cost_per_bandwidth_unit: Dollars::ZERO,
            max_capacity_units: 128,
            max_bandwidth_units: 0,
            capacity_per_unit: Gigabytes::new(143.0),
            bandwidth_per_unit: MegabytesPerSec::new(8.0),
        }
    }

    /// Table 3: high-end tape library — $141k enclosure, up to 24 drives
    /// of 120 MB/s at $18,400 each (2400 MB/s enclosure ceiling), 720
    /// cartridges of 60 GB at $100 each (cartridge price is our documented
    /// substitution; the table's media cost column is illegible).
    #[must_use]
    pub fn tape_library_high() -> Self {
        DeviceSpec {
            name: "tape library (high)".into(),
            kind: DeviceKind::TapeLibrary,
            class: DeviceClass::High,
            fixed_cost: Dollars::new(141_000.0),
            enclosure_bandwidth: MegabytesPerSec::new(2400.0),
            cost_per_capacity_unit: Dollars::new(100.0),
            cost_per_bandwidth_unit: Dollars::new(18_400.0),
            max_capacity_units: 720,
            max_bandwidth_units: 24,
            capacity_per_unit: Gigabytes::new(60.0),
            bandwidth_per_unit: MegabytesPerSec::new(120.0),
        }
    }

    /// Table 3: mid-range tape library — $76k enclosure, up to 4 drives of
    /// 120 MB/s at $10,400 each (400 MB/s ceiling), 120 cartridges.
    #[must_use]
    pub fn tape_library_med() -> Self {
        DeviceSpec {
            name: "tape library (med)".into(),
            kind: DeviceKind::TapeLibrary,
            class: DeviceClass::Med,
            fixed_cost: Dollars::new(76_000.0),
            enclosure_bandwidth: MegabytesPerSec::new(400.0),
            cost_per_capacity_unit: Dollars::new(100.0),
            cost_per_bandwidth_unit: Dollars::new(10_400.0),
            max_capacity_units: 120,
            max_bandwidth_units: 4,
            capacity_per_unit: Gigabytes::new(60.0),
            bandwidth_per_unit: MegabytesPerSec::new(120.0),
        }
    }

    /// Units needed to satisfy a (capacity, bandwidth) demand, or `None`
    /// if the demand exceeds the device's ceilings.
    ///
    /// Returns `(capacity_units, bandwidth_units)`; for disk arrays
    /// `bandwidth_units` is always zero and the capacity-unit count covers
    /// both dimensions.
    #[must_use]
    pub fn units_for(&self, capacity: Gigabytes, bandwidth: MegabytesPerSec) -> Option<(u32, u32)> {
        if bandwidth > self.enclosure_bandwidth {
            return None;
        }
        let cap_units_for_capacity = capacity.units_of(self.capacity_per_unit);
        if self.max_bandwidth_units == 0 {
            // Disk array: disks provide bandwidth too.
            let cap_units_for_bw =
                if bandwidth.is_zero() { 0 } else { bandwidth.units_of(self.bandwidth_per_unit) };
            let units = cap_units_for_capacity.max(cap_units_for_bw);
            if units > self.max_capacity_units {
                return None;
            }
            Some((units, 0))
        } else {
            // Tape library: cartridges + drives.
            let drives =
                if bandwidth.is_zero() { 0 } else { bandwidth.units_of(self.bandwidth_per_unit) };
            if cap_units_for_capacity > self.max_capacity_units || drives > self.max_bandwidth_units
            {
                return None;
            }
            Some((cap_units_for_capacity, drives))
        }
    }

    /// Effective aggregate bandwidth of an instance with the given unit
    /// counts: unit bandwidth capped by the enclosure ceiling.
    #[must_use]
    pub fn effective_bandwidth(
        &self,
        capacity_units: u32,
        bandwidth_units: u32,
    ) -> MegabytesPerSec {
        let units = if self.max_bandwidth_units == 0 { capacity_units } else { bandwidth_units };
        (self.bandwidth_per_unit * f64::from(units)).min(self.enclosure_bandwidth)
    }

    /// Total capacity of an instance with the given capacity units.
    #[must_use]
    pub fn total_capacity(&self, capacity_units: u32) -> Gigabytes {
        self.capacity_per_unit * f64::from(capacity_units)
    }

    /// Unamortized purchase price of an instance with the given units.
    #[must_use]
    pub fn purchase_cost(&self, capacity_units: u32, bandwidth_units: u32) -> Dollars {
        self.fixed_cost
            + self.cost_per_capacity_unit * f64::from(capacity_units)
            + self.cost_per_bandwidth_unit * f64::from(bandwidth_units)
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} {})", self.name, self.class, self.kind)
    }
}

/// An inter-site network link type (Table 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Class of the link type.
    pub class: DeviceClass,
    /// Unamortized cost per link.
    pub cost_per_link: Dollars,
    /// Bandwidth of one link.
    pub link_bandwidth: MegabytesPerSec,
    /// Maximum links on one route.
    pub max_links: u32,
}

impl NetworkSpec {
    /// Table 3: high-end network — 32 × 20 MB/s links at $500k each
    /// (640 MB/s aggregate).
    #[must_use]
    pub fn high() -> Self {
        NetworkSpec {
            class: DeviceClass::High,
            cost_per_link: Dollars::new(500_000.0),
            link_bandwidth: MegabytesPerSec::new(20.0),
            max_links: 32,
        }
    }

    /// Table 3: mid-range network — 16 × 10 MB/s links at $200k each
    /// (160 MB/s aggregate).
    #[must_use]
    pub fn med() -> Self {
        NetworkSpec {
            class: DeviceClass::Med,
            cost_per_link: Dollars::new(200_000.0),
            link_bandwidth: MegabytesPerSec::new(10.0),
            max_links: 16,
        }
    }

    /// Links needed to carry `bandwidth`, or `None` if beyond `max_links`.
    #[must_use]
    pub fn links_for(&self, bandwidth: MegabytesPerSec) -> Option<u32> {
        let links = if bandwidth.is_zero() { 0 } else { bandwidth.units_of(self.link_bandwidth) };
        (links <= self.max_links).then_some(links)
    }

    /// Aggregate bandwidth of `links` provisioned links.
    #[must_use]
    pub fn bandwidth(&self, links: u32) -> MegabytesPerSec {
        self.link_bandwidth * f64::from(links)
    }
}

/// Compute resources (Table 3): one server runs one application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeSpec {
    /// Unamortized cost per server.
    pub cost_per_server: Dollars,
}

impl Default for ComputeSpec {
    /// Table 3: $125k per high-end server.
    fn default() -> Self {
        ComputeSpec { cost_per_server: Dollars::new(125_000.0) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table3_array_numbers() {
        let xp = DeviceSpec::xp1200();
        assert_eq!(xp.fixed_cost.as_f64(), 375_000.0);
        assert_eq!(xp.enclosure_bandwidth.as_f64(), 512.0);
        assert_eq!(xp.max_capacity_units, 1024);
        let eva = DeviceSpec::eva800();
        assert_eq!(eva.cost_per_capacity_unit.as_f64(), 3_720.0);
        assert_eq!(eva.bandwidth_per_unit.as_f64(), 10.0);
        let msa = DeviceSpec::msa1500();
        assert_eq!(msa.max_capacity_units, 128);
        assert_eq!(msa.enclosure_bandwidth.as_f64(), 128.0);
    }

    #[test]
    fn array_units_cover_both_dimensions() {
        let xp = DeviceSpec::xp1200();
        // 1300 GB needs 10 disks; 50 MB/s needs 2 disks -> 10 disks.
        let (cap, bw) =
            xp.units_for(Gigabytes::new(1300.0), MegabytesPerSec::new(50.0)).expect("fits");
        assert_eq!((cap, bw), (10, 0));
        // Bandwidth-bound: 1 GB but 500 MB/s -> 20 disks.
        let (cap, _) =
            xp.units_for(Gigabytes::new(1.0), MegabytesPerSec::new(500.0)).expect("fits");
        assert_eq!(cap, 20);
    }

    #[test]
    fn array_rejects_over_enclosure_bandwidth() {
        let msa = DeviceSpec::msa1500();
        assert!(msa.units_for(Gigabytes::new(1.0), MegabytesPerSec::new(129.0)).is_none());
    }

    #[test]
    fn array_rejects_over_capacity() {
        let msa = DeviceSpec::msa1500();
        // 128 disks * 143 GB = 18,304 GB max.
        assert!(msa.units_for(Gigabytes::new(19_000.0), MegabytesPerSec::ZERO).is_none());
    }

    #[test]
    fn tape_units_are_cartridges_and_drives() {
        let tape = DeviceSpec::tape_library_high();
        let (carts, drives) =
            tape.units_for(Gigabytes::new(2600.0), MegabytesPerSec::new(200.0)).expect("fits");
        assert_eq!(carts, 44, "ceil(2600/60)");
        assert_eq!(drives, 2, "ceil(200/120)");
    }

    #[test]
    fn tape_rejects_too_many_drives() {
        let tape = DeviceSpec::tape_library_med();
        // 5 drives needed, max 4.
        assert!(tape.units_for(Gigabytes::new(60.0), MegabytesPerSec::new(500.0)).is_none());
    }

    #[test]
    fn effective_bandwidth_capped_by_enclosure() {
        let xp = DeviceSpec::xp1200();
        assert_eq!(xp.effective_bandwidth(10, 0).as_f64(), 250.0);
        assert_eq!(xp.effective_bandwidth(100, 0).as_f64(), 512.0, "capped");
        let tape = DeviceSpec::tape_library_med();
        assert_eq!(tape.effective_bandwidth(0, 2).as_f64(), 240.0);
        assert_eq!(tape.effective_bandwidth(0, 4).as_f64(), 400.0, "capped at enclosure");
    }

    #[test]
    fn purchase_cost_sums_components() {
        let tape = DeviceSpec::tape_library_high();
        let cost = tape.purchase_cost(44, 2);
        assert_eq!(cost.as_f64(), 141_000.0 + 44.0 * 100.0 + 2.0 * 18_400.0);
    }

    #[test]
    fn network_links_sized_and_bounded() {
        let high = NetworkSpec::high();
        assert_eq!(high.links_for(MegabytesPerSec::new(50.0)), Some(3));
        assert_eq!(high.links_for(MegabytesPerSec::ZERO), Some(0));
        assert_eq!(high.links_for(MegabytesPerSec::new(20.0 * 33.0)), None);
        assert_eq!(high.bandwidth(32).as_f64(), 640.0, "matches Table 3 aggregate");
        let med = NetworkSpec::med();
        assert_eq!(med.bandwidth(16).as_f64(), 160.0);
    }

    #[test]
    fn class_to_app_class_mapping() {
        assert_eq!(DeviceClass::High.matching_app_class(), AppClass::Gold);
        assert_eq!(DeviceClass::Med.matching_app_class(), AppClass::Silver);
        assert_eq!(DeviceClass::Low.matching_app_class(), AppClass::Bronze);
        assert!(DeviceClass::High > DeviceClass::Low);
    }

    #[test]
    fn compute_default_is_table3() {
        assert_eq!(ComputeSpec::default().cost_per_server.as_f64(), 125_000.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(DeviceSpec::xp1200().to_string(), "XP1200 (high disk array)");
        assert_eq!(DeviceKind::TapeLibrary.to_string(), "tape library");
        assert_eq!(DeviceClass::Med.to_string(), "med");
    }

    proptest! {
        #[test]
        fn prop_units_for_satisfies_demand(cap in 0.0..50_000.0f64, bw in 0.0..500.0f64) {
            let xp = DeviceSpec::xp1200();
            let capacity = Gigabytes::new(cap);
            let bandwidth = MegabytesPerSec::new(bw);
            if let Some((cu, bu)) = xp.units_for(capacity, bandwidth) {
                prop_assert!(xp.total_capacity(cu) >= capacity);
                prop_assert!(xp.effective_bandwidth(cu, bu) >= bandwidth);
            }
        }

        #[test]
        fn prop_tape_units_satisfy_demand(cap in 0.0..40_000.0f64, bw in 0.0..2000.0f64) {
            let tape = DeviceSpec::tape_library_high();
            let capacity = Gigabytes::new(cap);
            let bandwidth = MegabytesPerSec::new(bw);
            if let Some((cu, bu)) = tape.units_for(capacity, bandwidth) {
                prop_assert!(tape.total_capacity(cu) >= capacity);
                prop_assert!(tape.effective_bandwidth(cu, bu) >= bandwidth);
            }
        }

        #[test]
        fn prop_purchase_cost_monotone_in_units(c1 in 0u32..100, c2 in 0u32..100, b in 0u32..10) {
            let tape = DeviceSpec::tape_library_high();
            let (lo, hi) = if c1 < c2 { (c1, c2) } else { (c2, c1) };
            prop_assert!(tape.purchase_cost(lo, b) <= tape.purchase_cost(hi, b));
        }
    }
}
