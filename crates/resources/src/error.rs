//! Error type for resource allocation.

use std::error::Error;
use std::fmt;

use crate::topology::{RouteId, SiteId};

/// Why an allocation or provisioning request could not be satisfied.
///
/// All variants leave the [`crate::Provision`] unchanged: allocation is
/// validate-then-commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceError {
    /// The named array slot does not exist at the site.
    NoSuchArraySlot {
        /// Site the slot was requested at.
        site: SiteId,
        /// Requested slot index.
        slot: usize,
    },
    /// The named tape slot does not exist at the site.
    NoSuchTapeSlot {
        /// Site the slot was requested at.
        site: SiteId,
        /// Requested slot index.
        slot: usize,
    },
    /// The device cannot hold the requested capacity and bandwidth even
    /// fully populated.
    DeviceExhausted {
        /// Human-readable device description.
        device: String,
    },
    /// The route cannot carry the requested bandwidth even with the
    /// maximum number of links.
    RouteExhausted {
        /// The saturated route.
        route: RouteId,
    },
    /// No route exists between the two sites.
    NoRoute {
        /// One endpoint.
        a: SiteId,
        /// The other endpoint.
        b: SiteId,
    },
    /// The site has no free compute servers left.
    ComputeExhausted {
        /// The saturated site.
        site: SiteId,
    },
    /// Adding the requested extra units would exceed a device maximum.
    ExtraUnitsExceedMaximum {
        /// Human-readable device description.
        device: String,
    },
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::NoSuchArraySlot { site, slot } => {
                write!(f, "no array slot {slot} at {site}")
            }
            ResourceError::NoSuchTapeSlot { site, slot } => {
                write!(f, "no tape slot {slot} at {site}")
            }
            ResourceError::DeviceExhausted { device } => {
                write!(f, "device exhausted: {device}")
            }
            ResourceError::RouteExhausted { route } => {
                write!(f, "route exhausted: {route}")
            }
            ResourceError::NoRoute { a, b } => write!(f, "no route between {a} and {b}"),
            ResourceError::ComputeExhausted { site } => {
                write!(f, "compute exhausted at {site}")
            }
            ResourceError::ExtraUnitsExceedMaximum { device } => {
                write!(f, "extra units exceed maximum for {device}")
            }
        }
    }
}

impl Error for ResourceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_messages() {
        let e = ResourceError::NoRoute { a: SiteId(0), b: SiteId(1) };
        assert_eq!(e.to_string(), "no route between site#0 and site#1");
        let e = ResourceError::ComputeExhausted { site: SiteId(2) };
        assert!(e.to_string().contains("site#2"));
        let e = ResourceError::DeviceExhausted { device: "XP1200 @ site#0".into() };
        assert!(e.to_string().starts_with("device exhausted"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ResourceError>();
    }
}
