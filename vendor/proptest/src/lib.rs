//! Offline stand-in for `proptest`.
//!
//! Provides the macro-and-strategy surface this workspace's property
//! tests use: `proptest!`, `prop_assert*`, `prop_assume!`, `prop_oneof!`,
//! range/tuple/`Just`/`prop_map`/`collection::vec` strategies, and
//! `ProptestConfig::with_cases`. Cases are generated from a fixed
//! deterministic seed; there is no shrinking — a failing case panics with
//! the generated inputs' debug formatting instead.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Test-case rejection/failure carrier used by the macros.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// Assumption not met: the case is discarded, not failed.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-test configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// A fixed-seed generator (all runs see the same case sequence).
    #[must_use]
    pub fn deterministic() -> Self {
        TestRng(ChaCha8Rng::seed_from_u64(0x5EED_CAFE))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
    }
}

/// Type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (used by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union from its options.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($t:ident),+)),+) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H),
    (A, B, C, D, E, F, G, H, I)
);

/// Collection strategies.
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.min + 1 >= self.size.max_exclusive {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max_exclusive)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for `any::<T>()`.
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for a type.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    pub use crate::collection;
}

/// The usual imports.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Any, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic();
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while passed < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property `{}` failed at case {}: {}",
                                stringify!($name), passed, msg);
                        }
                    }
                }
                assert!(
                    passed >= config.cases,
                    "property `{}` exhausted attempts: {} of {} cases passed",
                    stringify!($name), passed, config.cases
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a property; failure reports the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a), stringify!($b), lhs, rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a), stringify!($b), lhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..6), c in 0.0..1.0f64) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!((0.0..1.0).contains(&c));
        }

        #[test]
        fn maps_and_vecs(v in collection::vec((0u8..4).prop_map(|x| x * 2), 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|x| x % 2 == 0 && *x < 8));
        }

        #[test]
        fn oneof_and_assume(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assume!(x != 2);
            prop_assert!(x == 1 || x == 5 || x == 6);
        }
    }

    #[test]
    fn any_samples_all_bits() {
        let mut rng = crate::TestRng::deterministic();
        let xs: Vec<u64> =
            (0..64).map(|_| crate::Strategy::sample(&any::<u64>(), &mut rng)).collect();
        assert!(xs.iter().any(|&x| x > u64::from(u32::MAX)), "high bits exercised");
    }
}
