//! Derive macros for the vendored `serde` stand-in.
//!
//! Parses struct/enum definitions directly from the token stream (the
//! build environment has no `syn`/`quote`) and emits `Serialize` /
//! `Deserialize` impls over the stand-in's `Value` tree.
//!
//! Supported shapes: non-generic structs (named, tuple, unit) and enums
//! (unit, tuple, struct variants). Supported attributes:
//! `#[serde(transparent)]`, `#[serde(deny_unknown_fields)]`,
//! `#[serde(default)]`, `#[serde(skip, default = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct SerdeAttrs {
    transparent: bool,
    deny_unknown_fields: bool,
    default: bool,
    default_path: Option<String>,
    skip: bool,
}

#[derive(Debug)]
struct Field {
    name: Option<String>, // None for tuple fields
    attrs: SerdeAttrs,
}

#[derive(Debug)]
enum Body {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    body: Body,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, attrs: SerdeAttrs, body: Body },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = SerdeAttrs::default();

    // Outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    merge_serde_attr(&mut attrs, &g.stream());
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }

    match kind.as_str() {
        "struct" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(&g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let fields = parse_tuple_fields(&g.stream());
                    Body::Tuple(fields.len())
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
                None => Body::Unit,
                other => panic!("unexpected struct body for {name}: {other:?}"),
            };
            Item::Struct { name, attrs, body }
        }
        "enum" => {
            let group = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("expected enum body for {name}, found {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(&group.stream()) }
        }
        other => panic!("cannot derive serde traits for `{other}`"),
    }
}

fn merge_serde_attr(attrs: &mut SerdeAttrs, attr_body: &TokenStream) {
    let tokens: Vec<TokenTree> = attr_body.clone().into_iter().collect();
    let is_serde =
        matches!(tokens.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return;
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else { return };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        match &args[j] {
            TokenTree::Ident(id) => {
                let word = id.to_string();
                let has_eq =
                    matches!(args.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=');
                match (word.as_str(), has_eq) {
                    ("transparent", _) => attrs.transparent = true,
                    ("deny_unknown_fields", _) => attrs.deny_unknown_fields = true,
                    ("skip", _) => attrs.skip = true,
                    ("default", false) => attrs.default = true,
                    ("default", true) => {
                        if let Some(TokenTree::Literal(lit)) = args.get(j + 2) {
                            let raw = lit.to_string();
                            attrs.default_path = Some(raw.trim_matches('"').to_owned());
                        }
                        j += 2;
                    }
                    (other, _) => {
                        panic!("unsupported serde attribute `{other}` in stand-in derive")
                    }
                }
            }
            TokenTree::Punct(_) => {}
            other => panic!("unexpected token in serde attribute: {other:?}"),
        }
        j += 1;
    }
}

/// Collects field-level serde attributes and skips the rest of each field
/// up to the next depth-0 comma.
fn parse_named_fields(body: &TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = SerdeAttrs::default();
        // Attributes + visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        merge_serde_attr(&mut attrs, &g.stream());
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(field_name)) = tokens.get(i) else {
            break; // trailing comma
        };
        let name = field_name.to_string();
        i += 1;
        // Skip `: Type` to the next depth-0 comma. Generic angle brackets
        // appear as plain '<'/'>' puncts; group tokens keep their nesting.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name: Some(name), attrs });
    }
    fields
}

fn parse_tuple_fields(body: &TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    let mut pending = false;
    let mut angle_depth = 0i32;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if pending {
                    fields.push(Field { name: None, attrs: SerdeAttrs::default() });
                    pending = false;
                }
                i += 1;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // field attribute + its bracket group
                continue;
            }
            _ => pending = true,
        }
        i += 1;
    }
    if pending {
        fields.push(Field { name: None, attrs: SerdeAttrs::default() });
    }
    fields
}

fn parse_variants(body: &TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes (doc comments etc.).
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(v)) = tokens.get(i) else { break };
        let name = v.to_string();
        i += 1;
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Body::Named(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let fields = parse_tuple_fields(&g.stream());
                Body::Tuple(fields.len())
            }
            _ => Body::Unit,
        };
        // Skip to next depth-0 comma (handles discriminants).
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, body });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, attrs, body } => {
            let body_code = match body {
                Body::Named(fields) if attrs.transparent => {
                    let f = fields.first().expect("transparent struct has a field");
                    format!(
                        "::serde::Serialize::serialize(&self.{})",
                        f.name.as_ref().expect("named")
                    )
                }
                Body::Named(fields) => {
                    let mut pushes = String::new();
                    for f in fields {
                        if f.attrs.skip {
                            continue;
                        }
                        let fname = f.name.as_ref().expect("named");
                        pushes.push_str(&format!(
                            "entries.push((\"{fname}\".to_string(), \
                             ::serde::Serialize::serialize(&self.{fname})));\n"
                        ));
                    }
                    format!(
                        "{{ let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes} ::serde::Value::Map(entries) }}"
                    )
                }
                Body::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Body::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::serialize(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Body::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{ {body_code} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.body {
                    Body::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    Body::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(f0) => ::serde::Value::Map(vec![(\
                         \"{vname}\".to_string(), ::serde::Serialize::serialize(f0))]),\n"
                    )),
                    Body::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![(\
                             \"{vname}\".to_string(), ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Body::Named(fields) => {
                        let names: Vec<&str> =
                            fields.iter().map(|f| f.name.as_deref().expect("named")).collect();
                        let items: Vec<String> = names
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::serialize({f}))")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Map(vec![(\
                             \"{vname}\".to_string(), ::serde::Value::Map(vec![{}]))]),\n",
                            names.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n}}"
            )
        }
    }
}

fn field_decode(owner: &str, f: &Field) -> String {
    let fname = f.name.as_ref().expect("named field");
    if f.attrs.skip {
        let default = f.attrs.default_path.as_ref().map_or_else(
            || "::core::default::Default::default()".to_string(),
            |p| format!("{p}()"),
        );
        return format!("{fname}: {default},\n");
    }
    let missing = if f.attrs.default || f.attrs.default_path.is_some() {
        f.attrs
            .default_path
            .as_ref()
            .map_or_else(|| "::core::default::Default::default()".to_string(), |p| format!("{p}()"))
    } else {
        // Option fields resolve Null to None; anything else reports the
        // shape mismatch with a breadcrumb.
        format!(
            "::serde::Deserialize::deserialize(&::serde::Value::Null)\
             .map_err(|e| e.context(\"{owner}.{fname}\"))?"
        )
    };
    format!(
        "{fname}: match value.get(\"{fname}\") {{\n\
         Some(v) if !v.is_null() => ::serde::Deserialize::deserialize(v)\
         .map_err(|e| e.context(\"{owner}.{fname}\"))?,\n\
         _ => {missing},\n}},\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, attrs, body } => {
            let body_code = match body {
                Body::Named(fields) if attrs.transparent => {
                    let f = fields.first().expect("transparent struct has a field");
                    let fname = f.name.as_ref().expect("named");
                    format!("Ok({name} {{ {fname}: ::serde::Deserialize::deserialize(value)? }})")
                }
                Body::Named(fields) => {
                    let known: Vec<String> = fields
                        .iter()
                        .filter(|f| !f.attrs.skip)
                        .map(|f| format!("\"{}\"", f.name.as_ref().expect("named")))
                        .collect();
                    let deny = attrs.deny_unknown_fields;
                    let decodes: String = fields.iter().map(|f| field_decode(name, f)).collect();
                    format!(
                        "let _ = ::serde::expect_struct_map(value, \"{name}\", &[{}], {deny})?;\n\
                         Ok({name} {{\n{decodes}}})",
                        known.join(", ")
                    )
                }
                Body::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::deserialize(value)?))")
                }
                Body::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| {
                            format!(
                                "::serde::Deserialize::deserialize(&items[{k}])\
                                 .map_err(|e| e.context(\"{name}.{k}\"))?"
                            )
                        })
                        .collect();
                    format!(
                        "match value {{\n\
                         ::serde::Value::Seq(items) if items.len() == {n} => \
                         Ok({name}({})),\n\
                         _ => Err(::serde::DeError::new(\
                         \"expected a {n}-element sequence for {name}\")),\n}}",
                        items.join(", ")
                    )
                }
                Body::Unit => format!("Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(value: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::DeError> {{ {body_code} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.body {
                    Body::Unit => {
                        arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                    }
                    Body::Tuple(1) => arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(\
                         ::serde::Deserialize::deserialize(payload)\
                         .map_err(|e| e.context(\"{name}::{vname}\"))?)),\n"
                    )),
                    Body::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| {
                                format!(
                                    "::serde::Deserialize::deserialize(&items[{k}])\
                                     .map_err(|e| e.context(\"{name}::{vname}.{k}\"))?"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "\"{vname}\" => match payload {{\n\
                             ::serde::Value::Seq(items) if items.len() == {n} => \
                             Ok({name}::{vname}({})),\n\
                             _ => Err(::serde::DeError::new(\
                             \"expected a {n}-element sequence for {name}::{vname}\")),\n}},\n",
                            items.join(", ")
                        ));
                    }
                    Body::Named(fields) => {
                        let known: Vec<String> = fields
                            .iter()
                            .map(|f| format!("\"{}\"", f.name.as_ref().expect("named")))
                            .collect();
                        let decodes: String = fields
                            .iter()
                            .map(|f| {
                                let fname = f.name.as_ref().expect("named");
                                format!(
                                    "{fname}: match payload.get(\"{fname}\") {{\n\
                                     Some(v) if !v.is_null() => \
                                     ::serde::Deserialize::deserialize(v)\
                                     .map_err(|e| e.context(\"{name}::{vname}.{fname}\"))?,\n\
                                     _ => ::serde::Deserialize::deserialize(&::serde::Value::Null)\
                                     .map_err(|e| e.context(\"{name}::{vname}.{fname}\"))?,\n}},\n"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let _ = ::serde::expect_struct_map(\
                             payload, \"{name}::{vname}\", &[{}], false)?;\n\
                             Ok({name}::{vname} {{\n{decodes}}})\n}},\n",
                            known.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(value: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::DeError> {{\n\
                 let (tag, payload) = ::serde::expect_enum(value, \"{name}\")?;\n\
                 let _ = payload;\n\
                 match tag {{\n{arms}\
                 other => Err(::serde::DeError::new(format!(\
                 \"unknown {name} variant: {{other}}\"))),\n}}\n}}\n}}"
            )
        }
    }
}
