//! Offline stand-in for `rand` 0.8.
//!
//! Implements the trait surface this workspace uses — [`RngCore`],
//! [`Rng::gen_range`] over integer and float ranges (half-open and
//! inclusive), [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] (same
//! SplitMix64 expansion as the real crate), and
//! [`seq::SliceRandom::shuffle`]/[`seq::SliceRandom::choose`].
//!
//! Determinism matters more than statistical polish here: every solver
//! run seeds an explicit generator, and tests assert bit-identical
//! reproducibility, so the stand-in keeps the uniform-range reductions
//! simple and stable.

use std::ops::{Range, RangeInclusive};

/// Core random source: 32/64-bit outputs and byte filling.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift reduction over 64 bits: uniform enough
                // for search heuristics, and stable across platforms.
                let r = rng.next_u64() as u128;
                let offset = (r * span) >> 64;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = rng.next_u64() as u128;
                let offset = (r * span) >> 64;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty, $bits:expr, $mant:expr);*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> (64 - $mant)) as $t
                    / (1u64 << $mant) as $t;
                let sampled = self.start + (self.end - self.start) * unit;
                // Guard against rounding up to the excluded endpoint.
                if sampled < self.end { sampled } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = (rng.next_u64() >> (64 - $mant)) as $t
                    / ((1u64 << $mant) - 1) as $t;
                start + (end - start) * unit
            }
        }
    )*};
}

float_ranges!(f64, 64, 53; f32, 32, 24);

/// Convenience sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]: {p}");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators with the real crate's SplitMix64 `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (matches `rand`
    /// 0.8's default implementation bit-for-bit).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Vigna), as used by rand_core::SeedableRng.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u128;
                let j = ((rng.next_u64() as u128 * span) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let span = self.len() as u128;
                let i = ((rng.next_u64() as u128 * span) >> 64) as usize;
                self.get(i)
            }
        }
    }
}

/// `rand::rngs` namespace with a minimal `StdRng` for completeness.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small xoshiro256++ generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let result =
                (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            }
            if s.iter().all(|&x| x == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15; // avoid the all-zero fixpoint
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
            let k = rng.gen_range(5..=5u32);
            assert_eq!(k, 5);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_and_choose_cover_all_elements() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..10).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        let mut seen = [false; 4];
        let opts = [0usize, 1, 2, 3];
        for _ in 0..200 {
            seen[*opts.choose(&mut rng).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
