//! Offline stand-in for `toml`: parses and renders the TOML subset the
//! workspace's specs use (tables, arrays of tables, inline arrays,
//! strings, numbers, booleans, comments) over the vendored serde value
//! tree.

use serde::{Deserialize, Serialize, Value};

/// Deserialization side.
pub mod de {
    use std::fmt;

    /// TOML parse / shape error.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        pub(crate) msg: String,
    }

    impl Error {
        pub(crate) fn new(msg: impl Into<String>) -> Self {
            Error { msg: msg.into() }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "TOML parse error: {}", self.msg)
        }
    }

    impl std::error::Error for Error {}
}

/// Serialization side.
pub mod ser {
    use std::fmt;

    /// TOML render error (unrepresentable value).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        pub(crate) msg: String,
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "TOML serialize error: {}", self.msg)
        }
    }

    impl std::error::Error for Error {}
}

/// Parses TOML text into any deserializable type.
///
/// # Errors
///
/// [`de::Error`] on malformed TOML or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, de::Error> {
    let value = parse_document(text)?;
    T::deserialize(&value).map_err(|e| de::Error::new(e.to_string()))
}

/// Renders a serializable value as pretty TOML.
///
/// # Errors
///
/// [`ser::Error`] when the value is not a map at the top level.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, ser::Error> {
    let v = value.serialize();
    let Value::Map(entries) = &v else {
        return Err(ser::Error { msg: "top-level TOML value must be a table".into() });
    };
    let mut out = String::new();
    write_table(entries, &[], &mut out);
    Ok(out)
}

/// Renders a serializable value as TOML (same as pretty).
///
/// # Errors
///
/// [`ser::Error`] when the value is not a map at the top level.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, ser::Error> {
    to_string_pretty(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn is_inline(value: &Value) -> bool {
    match value {
        Value::Map(_) => false,
        Value::Seq(items) => items.iter().all(is_inline),
        _ => true,
    }
}

fn write_table(entries: &[(String, Value)], path: &[&str], out: &mut String) {
    // Scalars and inline arrays first, then sub-tables, then table arrays.
    for (k, v) in entries {
        if v.is_null() {
            continue;
        }
        if is_inline(v) {
            out.push_str(k);
            out.push_str(" = ");
            write_inline(v, out);
            out.push('\n');
        }
    }
    for (k, v) in entries {
        match v {
            Value::Map(inner) => {
                let mut sub: Vec<&str> = path.to_vec();
                sub.push(k);
                if !out.is_empty() {
                    out.push('\n');
                }
                out.push('[');
                out.push_str(&sub.join("."));
                out.push_str("]\n");
                write_table(inner, &sub, out);
            }
            Value::Seq(items) if !is_inline(v) => {
                let mut sub: Vec<&str> = path.to_vec();
                sub.push(k);
                for item in items {
                    let Value::Map(inner) = item else { continue };
                    if !out.is_empty() {
                        out.push('\n');
                    }
                    out.push_str("[[");
                    out.push_str(&sub.join("."));
                    out.push_str("]]\n");
                    write_table(inner, &sub, out);
                }
            }
            _ => {}
        }
    }
}

fn write_inline(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("\"\""), // unreachable: nulls are skipped
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(k);
                out.push_str(" = ");
                write_inline(v, out);
            }
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses a TOML document into a [`Value::Map`].
///
/// # Errors
///
/// [`de::Error`] on malformed input.
pub fn parse_document(text: &str) -> Result<Value, de::Error> {
    let mut root: Vec<(String, Value)> = Vec::new();
    // Path of the table currently being filled.
    let mut current: Vec<String> = Vec::new();

    let mut lines = text.lines().enumerate().peekable();
    while let Some((lineno, raw)) = lines.next() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let name = header
                .strip_suffix("]]")
                .ok_or_else(|| {
                    de::Error::new(format!("line {}: bad table array header", lineno + 1))
                })?
                .trim();
            current = name.split('.').map(|s| s.trim().to_owned()).collect();
            let seq = resolve_seq(&mut root, &current, lineno)?;
            seq.push(Value::Map(Vec::new()));
        } else if let Some(header) = line.strip_prefix('[') {
            let name = header
                .strip_suffix(']')
                .ok_or_else(|| de::Error::new(format!("line {}: bad table header", lineno + 1)))?
                .trim();
            current = name.split('.').map(|s| s.trim().to_owned()).collect();
            let _ = resolve_map(&mut root, &current, lineno)?;
        } else {
            // key = value (value may span lines for arrays).
            let eq = line.find('=').ok_or_else(|| {
                de::Error::new(format!("line {}: expected `key = value`", lineno + 1))
            })?;
            let key = line[..eq].trim().trim_matches('"').to_owned();
            let mut value_text = line[eq + 1..].trim().to_owned();
            // Continue multiline arrays until brackets balance.
            while bracket_balance(&value_text) > 0 {
                let Some((_, next)) = lines.next() else {
                    return Err(de::Error::new(format!("line {}: unterminated array", lineno + 1)));
                };
                value_text.push(' ');
                value_text.push_str(strip_comment(next).trim());
            }
            let value = parse_value(&value_text, lineno)?;
            let table = resolve_map(&mut root, &current, lineno)?;
            table.push((key, value));
        }
    }
    Ok(Value::Map(root))
}

fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn bracket_balance(text: &str) -> i32 {
    let mut balance = 0;
    let mut in_string = false;
    for c in text.chars() {
        match c {
            '"' => in_string = !in_string,
            '[' if !in_string => balance += 1,
            ']' if !in_string => balance -= 1,
            _ => {}
        }
    }
    balance
}

/// Walks/creates the map at `path`, descending into the most recent
/// element of any table array along the way.
fn resolve_map<'a>(
    root: &'a mut Vec<(String, Value)>,
    path: &[String],
    lineno: usize,
) -> Result<&'a mut Vec<(String, Value)>, de::Error> {
    let mut table = root;
    for part in path {
        if !table.iter().any(|(k, _)| k == part) {
            table.push((part.clone(), Value::Map(Vec::new())));
        }
        let idx = table.iter().position(|(k, _)| k == part).expect("just ensured");
        let next = &mut table[idx].1;
        table = match next {
            Value::Map(m) => m,
            Value::Seq(items) => match items.last_mut() {
                Some(Value::Map(m)) => m,
                _ => {
                    return Err(de::Error::new(format!(
                        "line {}: `{part}` is not a table",
                        lineno + 1
                    )))
                }
            },
            _ => {
                return Err(de::Error::new(format!("line {}: `{part}` is not a table", lineno + 1)))
            }
        };
    }
    Ok(table)
}

/// Walks/creates the table-array at `path` and returns its element list.
fn resolve_seq<'a>(
    root: &'a mut Vec<(String, Value)>,
    path: &[String],
    lineno: usize,
) -> Result<&'a mut Vec<Value>, de::Error> {
    let (last, prefix) = path.split_last().expect("non-empty header");
    let parent = resolve_map(root, prefix, lineno)?;
    if !parent.iter().any(|(k, _)| k == last) {
        parent.push((last.clone(), Value::Seq(Vec::new())));
    }
    let idx = parent.iter().position(|(k, _)| k == last).expect("just ensured");
    match &mut parent[idx].1 {
        Value::Seq(items) => Ok(items),
        _ => {
            Err(de::Error::new(format!("line {}: `{last}` is not an array of tables", lineno + 1)))
        }
    }
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, de::Error> {
    let text = text.trim();
    let err = |msg: &str| de::Error::new(format!("line {}: {msg}: `{text}`", lineno + 1));
    if text.is_empty() {
        return Err(err("empty value"));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let inner = rest.strip_suffix('"').ok_or_else(|| err("unterminated string"))?;
        return Ok(Value::Str(unescape(inner)));
    }
    if let Some(rest) = text.strip_prefix('\'') {
        let inner = rest.strip_suffix('\'').ok_or_else(|| err("unterminated string"))?;
        return Ok(Value::Str(inner.to_owned()));
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if text.starts_with('[') {
        let inner = text
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .ok_or_else(|| err("unterminated array"))?;
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_value(part, lineno)?);
        }
        return Ok(Value::Seq(items));
    }
    if text.starts_with('{') {
        let inner = text
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or_else(|| err("unterminated inline table"))?;
        let mut entries = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let eq = part.find('=').ok_or_else(|| err("bad inline table entry"))?;
            entries
                .push((part[..eq].trim().to_owned(), parse_value(part[eq + 1..].trim(), lineno)?));
        }
        return Ok(Value::Map(entries));
    }
    let cleaned = text.replace('_', "");
    if cleaned.contains('.') || cleaned.contains('e') || cleaned.contains('E') {
        if let Ok(f) = cleaned.parse::<f64>() {
            return Ok(Value::Float(f));
        }
    }
    if let Ok(i) = cleaned.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = cleaned.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(err("unrecognized value"))
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Splits on top-level commas (outside strings, brackets, braces).
fn split_top_level(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0;
    let mut in_string = false;
    let mut start = 0;
    for (i, c) in text.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '[' | '{' if !in_string => depth += 1,
            ']' | '}' if !in_string => depth -= 1,
            ',' if !in_string && depth == 0 => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_and_table_arrays() {
        let text = r#"
            # top comment
            title = "demo"
            count = 3
            ratio = 0.5
            flag = true

            [network]
            class = "high"

            [[apps]]
            name = "a"
            tags = ["x", "y"]

            [[apps]]
            name = "b"
        "#;
        let v = parse_document(text).unwrap();
        assert_eq!(v.get("title"), Some(&Value::Str("demo".into())));
        assert_eq!(v.get("count"), Some(&Value::Int(3)));
        assert_eq!(v.get("ratio"), Some(&Value::Float(0.5)));
        assert_eq!(v.get("network").unwrap().get("class"), Some(&Value::Str("high".into())));
        let Value::Seq(apps) = v.get("apps").unwrap() else { panic!("seq") };
        assert_eq!(apps.len(), 2);
        assert_eq!(apps[1].get("name"), Some(&Value::Str("b".into())));
    }

    #[test]
    fn roundtrips_through_writer() {
        let v = Value::Map(vec![
            ("x".into(), Value::Int(1)),
            (
                "apps".into(),
                Value::Seq(vec![Value::Map(vec![
                    ("name".into(), Value::Str("a".into())),
                    ("caps".into(), Value::Seq(vec![Value::Float(1.5)])),
                ])]),
            ),
            ("net".into(), Value::Map(vec![("class".into(), Value::Str("med".into()))])),
        ]);
        let text = to_string_pretty(&v).unwrap();
        let parsed = parse_document(&text).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn bad_input_errors() {
        assert!(parse_document("key").is_err());
        assert!(parse_document("[unclosed").is_err());
        assert!(parse_document("x = ").is_err());
    }
}
