//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 block function
//! driving the vendored `rand` traits. The keystream is a faithful
//! ChaCha8 (RFC 7539 block layout, 8 rounds), though word-extraction
//! order is not guaranteed to match the real `rand_chacha` crate —
//! everything in this workspace only relies on seeded determinism.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed from a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // Two rounds per iteration: column then diagonal.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = state[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        }
        ChaCha8Rng { key, counter: 0, buffer: [0; 16], index: 16 }
    }
}

/// Twelve-round variant (same construction, more rounds).
#[derive(Debug, Clone)]
pub struct ChaCha12Rng(ChaCha8Rng);

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        ChaCha12Rng(ChaCha8Rng::from_seed(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_are_reproducible_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(2006);
        let mut b = ChaCha8Rng::seed_from_u64(2006);
        let mut c = ChaCha8Rng::seed_from_u64(2007);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_is_not_degenerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let words: Vec<u32> = (0..1024).map(|_| rng.next_u32()).collect();
        let zeros = words.iter().filter(|&&w| w == 0).count();
        assert!(zeros < 4, "keystream should look random: {zeros} zero words");
        let mean: f64 = words.iter().map(|&w| f64::from(w)).sum::<f64>() / words.len() as f64;
        let mid = f64::from(u32::MAX) / 2.0;
        assert!((mean - mid).abs() < mid * 0.1, "mean {mean} vs {mid}");
    }

    #[test]
    fn range_sampling_compiles_over_chacha() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let x = rng.gen_range(0..100usize);
        assert!(x < 100);
    }
}
