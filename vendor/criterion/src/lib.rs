//! Offline stand-in for `criterion`.
//!
//! Keeps the macro and builder surface the workspace benches use
//! (`criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `sample_size`, `warm_up_time`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`) but measures with a plain wall-clock loop and prints
//! mean per-iteration time. No statistics, plots, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Builder hook kept for API compatibility.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
            warm_up: Duration::from_millis(100),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_bench(name, self.default_sample_size, Duration::from_millis(100), f);
    }
}

/// Named benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets iterations per measurement.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, self.warm_up, f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, self.warm_up, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, warm_up: Duration, mut f: F) {
    // Warm-up: run single iterations until the warm-up budget elapses.
    let warm_start = Instant::now();
    while warm_start.elapsed() < warm_up {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
    }
    let mut b = Bencher { iters: samples as u64, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter =
        if b.iters > 0 { b.elapsed / u32::try_from(b.iters).unwrap_or(1) } else { Duration::ZERO };
    println!("bench {label:<48} {per_iter:>12.3?}/iter ({} iters)", b.iters);
}

/// Re-export kept because some benches import `black_box` from criterion.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        let mut count = 0u64;
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .bench_function("count", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(count >= 3, "bench body should run at least sample_size times");
    }
}
