//! Offline stand-in for `serde`.
//!
//! The real `serde` could not be vendored into this repository (the build
//! environment has no network and no registry cache), so this crate
//! provides the subset the workspace actually uses: `Serialize` /
//! `Deserialize` traits driven by a small self-describing [`Value`] tree,
//! plus derive macros re-exported from the companion `serde_derive`
//! proc-macro crate.
//!
//! The data model is deliberately simple — `Null`, `Bool`, `Int`,
//! `Float`, `Str`, `Seq`, `Map` — and both `serde_json` and `toml`
//! stand-ins in `vendor/` speak it, so derived types roundtrip through
//! JSON and TOML exactly as the workspace expects.
//!
//! Supported derive attributes: `#[serde(transparent)]`,
//! `#[serde(deny_unknown_fields)]`, `#[serde(default)]` (field level),
//! and `#[serde(skip, default = "path")]`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// The self-describing value tree every serializer/deserializer speaks.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (covers every integer type in the workspace).
    Int(i64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered key/value map (order preserved for pretty output).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a `Map` value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error: a human-readable message with a breadcrumb path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error from a message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Prefixes the error with a field/element breadcrumb.
    #[must_use]
    pub fn context(self, at: &str) -> Self {
        DeError { msg: format!("{at}: {}", self.msg) }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialize into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn serialize(&self) -> Value;
}

/// Deserialize from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// [`DeError`] when the value's shape does not match.
    fn deserialize(value: &Value) -> Result<Self, DeError>;
}

/// Helper used by derived code: interprets a value as the map of a named
/// struct, enforcing `deny_unknown_fields` when requested.
///
/// # Errors
///
/// [`DeError`] when the value is not a map or contains unknown keys.
pub fn expect_struct_map<'v>(
    value: &'v Value,
    type_name: &str,
    known: &[&str],
    deny_unknown: bool,
) -> Result<&'v Vec<(String, Value)>, DeError> {
    match value {
        Value::Map(entries) => {
            if deny_unknown {
                for (k, _) in entries {
                    if !known.contains(&k.as_str()) {
                        return Err(DeError::new(format!(
                            "unknown field `{k}` in {type_name} (expected one of {known:?})"
                        )));
                    }
                }
            }
            Ok(entries)
        }
        other => {
            Err(DeError::new(format!("expected a map for {type_name}, found {}", other.kind())))
        }
    }
}

/// Helper used by derived enum code: splits an externally-tagged enum
/// value into `(variant_name, payload)`. Unit variants may be plain
/// strings.
///
/// # Errors
///
/// [`DeError`] when the value is neither a string nor a one-entry map.
pub fn expect_enum<'v>(value: &'v Value, type_name: &str) -> Result<(&'v str, &'v Value), DeError> {
    match value {
        Value::Str(s) => Ok((s.as_str(), &Value::Null)),
        Value::Map(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
        other => Err(DeError::new(format!(
            "expected a variant string or single-entry map for {type_name}, found {}",
            other.kind()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(i64::try_from(*self).expect("integer fits i64"))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        DeError::new(format!("integer {i} out of range for {}", stringify!($t)))
                    }),
                    // TOML/JSON parsers may produce floats for whole numbers.
                    Value::Float(f) if f.fract() == 0.0 && f.is_finite() => {
                        <$t>::try_from(*f as i64).map_err(|_| {
                            DeError::new(format!("number {f} out of range for {}", stringify!($t)))
                        })
                    }
                    other => Err(DeError::new(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, i8, i16, i32, i64, usize, isize);

impl Serialize for u64 {
    fn serialize(&self) -> Value {
        Value::Int(i64::try_from(*self).expect("u64 fits i64"))
    }
}
impl Deserialize for u64 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Int(i) => u64::try_from(*i)
                .map_err(|_| DeError::new(format!("integer {i} out of range for u64"))),
            other => Err(DeError::new(format!("expected integer, found {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DeError::new(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::new(format!(
                "expected single-character string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items
                .iter()
                .enumerate()
                .map(|(i, v)| T::deserialize(v).map_err(|e| e.context(&format!("[{i}]"))))
                .collect(),
            other => Err(DeError::new(format!("expected sequence, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Arc<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        T::deserialize(value).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        T::deserialize(value).map(Box::new)
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Seq(items) => {
                        let expected = [$($n),+].len();
                        if items.len() != expected {
                            return Err(DeError::new(format!(
                                "expected a {expected}-tuple, found {} elements", items.len()
                            )));
                        }
                        Ok(($($t::deserialize(&items[$n])
                            .map_err(|e| e.context(&format!(".{}", $n)))?,)+))
                    }
                    other => Err(DeError::new(format!(
                        "expected sequence for tuple, found {}", other.kind()
                    ))),
                }
            }
        }
    )+};
}

tuple_impls!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);

/// Map keys are rendered as strings (JSON-style). Any key type whose
/// serialized form is a string or integer works — integer-like keys
/// (including newtype wrappers such as `AppId`) stringify on serialize
/// and parse back on deserialize.
fn key_to_string(value: &Value) -> Result<String, DeError> {
    match value {
        Value::Str(s) => Ok(s.clone()),
        Value::Int(i) => Ok(i.to_string()),
        other => Err(DeError::new(format!("unsupported map key kind: {}", other.kind()))),
    }
}

fn key_from_str<K: Deserialize>(key: &str) -> Result<K, DeError> {
    if let Ok(k) = K::deserialize(&Value::Str(key.to_owned())) {
        return Ok(k);
    }
    if let Ok(i) = key.parse::<i64>() {
        return K::deserialize(&Value::Int(i));
    }
    Err(DeError::new(format!("unparseable map key: {key}")))
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.serialize()).expect("map key"), v.serialize()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| {
                    Ok((key_from_str::<K>(k)?, V::deserialize(v).map_err(|e| e.context(k))?))
                })
                .collect(),
            other => Err(DeError::new(format!("expected map, found {}", other.kind()))),
        }
    }
}

impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.serialize()).expect("map key"), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| {
                    Ok((key_from_str::<K>(k)?, V::deserialize(v).map_err(|e| e.context(k))?))
                })
                .collect(),
            other => Err(DeError::new(format!("expected map, found {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::deserialize(&42u32.serialize()), Ok(42));
        assert_eq!(f64::deserialize(&1.5f64.serialize()), Ok(1.5));
        assert_eq!(String::deserialize(&"hi".to_owned().serialize()), Ok("hi".into()));
        assert_eq!(char::deserialize(&'X'.serialize()), Ok('X'));
        assert_eq!(Option::<u32>::deserialize(&Value::Null), Ok(None));
        assert_eq!(Vec::<u8>::deserialize(&vec![1u8, 2].serialize()), Ok(vec![1, 2]));
    }

    #[test]
    fn maps_keyed_by_integers_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "x".to_owned());
        let v = m.serialize();
        assert_eq!(v.get("3"), Some(&Value::Str("x".into())));
        assert_eq!(BTreeMap::<u32, String>::deserialize(&v), Ok(m));
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(u32::deserialize(&Value::Str("no".into())).is_err());
        assert!(bool::deserialize(&Value::Int(1)).is_err());
        assert!(<(u8, u8)>::deserialize(&Value::Seq(vec![Value::Int(1)])).is_err());
    }
}
