//! Offline stand-in for `serde_json`: pretty printing and parsing of the
//! vendored serde [`Value`](serde::Value) tree.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON error (parse or shape mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), 0, &mut out);
    Ok(out)
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the vendored data model.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    to_string_pretty(value)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::deserialize(&value).map_err(Error::from)
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_value(value: &Value, level: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                indent(out, level + 1);
                write_value(item, level + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(out, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                indent(out, level + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value(v, level + 1, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(out, level);
            out.push('}');
        }
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        if f.fract() == 0.0 && f.abs() < 1e15 {
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&f.to_string());
        }
    } else {
        // JSON has no Inf/NaN; mirror serde_json's strictness loosely by
        // emitting null (the workspace never serializes non-finite values).
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// [`Error`] on malformed JSON.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("bad keyword at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad float: {text}")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("bad integer: {text}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::Int(1), Value::Float(2.5), Value::Null])),
            ("b".into(), Value::Str("x \"y\"\n".into())),
            ("c".into(), Value::Bool(true)),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn malformed_rejected() {
        assert!(parse("{nope").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string_pretty(&3.0f64).unwrap(), "3.0");
        assert_eq!(parse("3.0").unwrap(), Value::Float(3.0));
    }
}
